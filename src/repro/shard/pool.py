"""The persistent ``multiprocessing`` worker pool for shard tasks.

One worker = one long-lived process holding a *warm snapshot cache*: shard
databases (and their Definition 3.1 encodings) are shipped once, keyed by
digest, and later tasks reference them by digest only — the expensive
``encode_database`` runs once per (worker, shard) pair, mirroring what the
catalog does in-process.

Reliability model:

* **Health checks** — :meth:`ShardWorkerPool.ping` round-trips every
  worker and respawns any that died idle.
* **Crash detection** — a worker dying mid-task surfaces as ``EOFError``
  / ``BrokenPipeError`` on its pipe; the coordinator respawns the worker
  (its snapshot cache restarts cold) and retries the task with
  exponential backoff, at most ``max_retries`` times.
* **Per-task timeouts** — a task overrunning its deadline gets its worker
  killed (the budgeted evaluation would finish eventually, but the
  deadline wins) and counts as a crash for retry purposes.
* **Graceful degradation** — when retries are exhausted the task runs
  in-process via :func:`execute_task`, so a dying pool degrades to the
  single-process runtime instead of erroring the batch.

Tasks and replies are plain picklable dicts; :func:`execute_task` is the
single execution semantics shared by workers and the degraded path.
``{"kind": "crash"}`` makes a worker ``os._exit`` — the deterministic
crash injection the recovery tests use.

**Trace propagation.**  A task may carry a ``"trace"`` dict
(``{"trace_id", "parent_id", "shard"}``) — the coordinator's trace
context crossing the pipe.  The worker then records its own spans
(``worker.task`` → ``worker.snapshot`` / ``worker.evaluate``) with a
:class:`~repro.obs.tracing.SpanRecorder` and ships them back in the
reply's ``"spans"`` list, where the coordinator grafts them into its
tracer.  Workers that crash take their recorded spans with them; the
*retry*'s spans (plus a coordinator-synthesized ``shard.respawn``
span) represent the recovery in the merged tree.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.db.encode import encode_database
from repro.db.relations import Database, Relation
from repro.errors import EvaluationError, FuelExhausted, ReproError
from repro.obs.tracing import NOOP_SPAN, SpanRecorder

#: Events reported to the pool's observer callback.
EVENT_TASK = "task"
EVENT_RETRY = "retry"
EVENT_CRASH = "crash"
EVENT_TIMEOUT = "timeout"
EVENT_DEGRADED = "degraded"
EVENT_RESPAWN = "respawn"


class WorkerCrash(ReproError):
    """A worker died (or timed out) while running a task."""


class WorkerTimeout(WorkerCrash):
    """A worker missed its per-task deadline (killed and respawned)."""


# ---------------------------------------------------------------------------
# Task execution (worker side and the degraded in-process path)
# ---------------------------------------------------------------------------

#: Per-process task counter: keeps worker span ids unique when one
#: process serves several shards of the same trace.
_TASK_IDS = itertools.count(1)


class _NoopRecorder:
    """Recorder stand-in for untraced tasks: zero allocation per span."""

    __slots__ = ()

    def span(self, name: str, **attrs):
        return NOOP_SPAN

    def spans(self) -> List[dict]:
        return []


_NOOP_RECORDER = _NoopRecorder()


def _task_recorder(task: dict):
    """A span recorder bound to the task's trace context (or a no-op)."""
    trace = task.get("trace")
    if not trace:
        return _NOOP_RECORDER
    prefix = trace.get("prefix") or f"w{os.getpid()}t{next(_TASK_IDS)}"
    return SpanRecorder(
        str(trace.get("trace_id") or ""),
        trace.get("parent_id"),
        prefix=str(prefix),
    )


def _attach_spans(reply: dict, recorder) -> dict:
    spans = recorder.spans()
    if spans:
        reply["spans"] = spans
    return reply


def _resolve_database(
    task: dict, cache: Dict[str, Tuple[Database, tuple]]
) -> Tuple[Database, tuple]:
    digest = task.get("db_digest")
    database = task.get("database")
    if database is not None:
        entry = (database, tuple(encode_database(database)))
        if digest is not None:
            cache[digest] = entry
        return entry
    if digest is not None and digest in cache:
        return cache[digest]
    raise ReproError(
        f"task references unknown database snapshot {digest!r}"
    )


def execute_task(
    task: dict, cache: Optional[Dict[str, Tuple[Database, tuple]]] = None
) -> dict:
    """Execute one shard task; never raises — errors become replies.

    Kinds: ``ping`` (health check), ``db`` (preload a snapshot), ``term``
    (evaluate a term plan over a snapshot), ``ra`` (evaluate an RA step,
    optionally with the broadcast fixpoint stage bound to ``fix_name``).
    """
    if cache is None:
        cache = {}
    kind = task.get("kind")
    recorder = (
        _task_recorder(task) if kind in ("term", "ra") else _NOOP_RECORDER
    )
    shard_index = (task.get("trace") or {}).get("shard")
    try:
        if kind == "ping":
            return {"ok": True, "kind": "pong", "pid": os.getpid()}
        if kind == "db":
            _resolve_database(task, cache)
            return {"ok": True, "kind": "db"}
        if kind == "term":
            from repro.compile import CompileFallback
            from repro.db.decode import decode_relation
            from repro.obs.profiler import ProfileCollector
            from repro.service.engines import evaluate_term_query

            with recorder.span(
                "worker.task", kind="term", shard=shard_index,
                pid=os.getpid(),
            ):
                with recorder.span(
                    "worker.snapshot",
                    warm=(
                        task.get("database") is None
                        and task.get("db_digest") in cache
                    ),
                ):
                    database, encoded = _resolve_database(task, cache)
                collector = ProfileCollector()
                engine = task.get("engine", "nbe")
                with recorder.span(
                    "worker.evaluate", engine=engine
                ) as span:
                    try:
                        result = evaluate_term_query(
                            task["term"],
                            encoded,
                            engine=engine,
                            fuel=task.get("fuel"),
                            max_depth=task.get("max_depth", 600_000),
                            observer=collector,
                            database=database,
                            output_arity=task.get("arity"),
                        )
                    except (CompileFallback, EvaluationError):
                        # "ra" degrades to NBE per shard (same relation,
                        # reduction semantics); other engines re-raise.
                        if engine != "ra":
                            raise
                        span.set_attr("compile_fallback", True)
                        result = evaluate_term_query(
                            task["term"],
                            encoded,
                            engine="nbe",
                            fuel=task.get("fuel"),
                            max_depth=task.get("max_depth", 600_000),
                            observer=collector,
                        )
                    span.set_attr("steps", result.steps)
                decoded = decode_relation(
                    result.normal_form, task.get("arity")
                )
            return _attach_spans(
                {
                    "ok": True,
                    "tuples": decoded.relation.tuples,
                    "arity": decoded.relation.arity,
                    "steps": result.steps,
                    "profile": collector.profile.as_dict(),
                },
                recorder,
            )
        if kind == "ra":
            from repro.eval.materialize import run_ra_query_materialized

            with recorder.span(
                "worker.task", kind="ra", shard=shard_index,
                pid=os.getpid(),
            ):
                with recorder.span(
                    "worker.snapshot",
                    warm=(
                        task.get("database") is None
                        and task.get("db_digest") in cache
                    ),
                ):
                    database, _ = _resolve_database(task, cache)
                fix_tuples = task.get("fix_tuples")
                if fix_tuples is not None:
                    database = database.with_relation(
                        task["fix_name"],
                        Relation.from_tuples(task["fix_arity"], fix_tuples),
                    )
                with recorder.span(
                    "worker.evaluate", engine="ra"
                ) as span:
                    run = run_ra_query_materialized(
                        task["expr"],
                        database,
                        max_depth=task.get("max_depth", 600_000),
                    )
                    span.set_attr("steps", run.steps)
            return _attach_spans(
                {
                    "ok": True,
                    "tuples": run.relation.tuples,
                    "arity": run.relation.arity,
                    "steps": run.steps,
                },
                recorder,
            )
        return {"ok": False, "error_kind": "error",
                "error": f"unknown task kind {kind!r}"}
    except FuelExhausted as exc:
        return _attach_spans(
            {
                "ok": False,
                "error_kind": "fuel",
                "steps": exc.steps,
                "error": str(exc),
            },
            recorder,
        )
    except Exception as exc:  # noqa: BLE001 - replies, never raises
        return _attach_spans(
            {
                "ok": False,
                "error_kind": "error",
                "error": f"{type(exc).__name__}: {exc}",
            },
            recorder,
        )


def _worker_main(conn) -> None:
    """The worker process loop: recv task, execute, send reply."""
    cache: Dict[str, Tuple[Database, tuple]] = {}
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        kind = task.get("kind")
        if kind == "shutdown":
            return
        if kind == "crash":
            # Deterministic crash injection for the recovery tests: die
            # without replying, exactly like a segfault would.
            os._exit(task.get("exitcode", 3))
        conn.send(execute_task(task, cache))


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------

class _Worker:
    __slots__ = ("index", "process", "conn", "seen", "respawns")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.seen: set = set()
        self.respawns = 0


class ShardWorkerPool:
    """A fixed-size pool of persistent shard workers.

    ``observer`` (if given) is called with one event name per notable
    occurrence (``task`` / ``retry`` / ``crash`` / ``timeout`` /
    ``degraded`` / ``respawn``) — the service runtime wires it to the
    ``repro_shard_*`` metrics.
    """

    def __init__(
        self,
        workers: int,
        *,
        start_method: Optional[str] = None,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        task_timeout_s: Optional[float] = None,
        observer: Optional[Callable[[str], None]] = None,
    ) -> None:
        if workers < 1:
            raise ReproError(f"pool needs >= 1 worker, got {workers}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.task_timeout_s = task_timeout_s
        self._observer = observer
        self._lock = threading.Lock()
        self._closed = False
        self._workers: List[_Worker] = []
        # One mutex per worker *slot*, held across every send/recv
        # roundtrip (and the respawn that follows a crash).  The pool is
        # shared by concurrent requests, so without it two threads could
        # interleave sends on one pipe and steal each other's replies.
        # Locks are keyed by index and survive respawns.
        self._worker_locks: List[threading.Lock] = []
        for index in range(workers):
            self._workers.append(self._spawn(index))
            self._worker_locks.append(threading.Lock())

    # -- lifecycle -----------------------------------------------------------

    def _notify(self, event: str) -> None:
        if self._observer is not None:
            self._observer(event)

    def _spawn(self, index: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(index, process, parent_conn)

    def _respawn(self, index: int) -> _Worker:
        # Caller holds the worker's slot lock; a pool that closed while
        # this task was in flight must not spawn a zombie replacement.
        if self._closed:
            raise ReproError("the shard worker pool is closed")
        old = self._workers[index]
        try:
            old.conn.close()
        except OSError:
            pass
        if old.process.is_alive():
            old.process.kill()
        old.process.join(timeout=5)
        fresh = self._spawn(index)
        fresh.respawns = old.respawns + 1
        self._workers[index] = fresh
        self._notify(EVENT_RESPAWN)
        return fresh

    @property
    def size(self) -> int:
        return len(self._workers)

    def ensure_workers(self, count: int) -> None:
        """Grow the pool to at least ``count`` workers."""
        with self._lock:
            if self._closed:
                raise ReproError("the shard worker pool is closed")
            while len(self._workers) < count:
                self._workers.append(self._spawn(len(self._workers)))
                self._worker_locks.append(threading.Lock())

    def worker_pids(self) -> List[Optional[int]]:
        return [w.process.pid for w in self._workers]

    def respawn_counts(self) -> List[int]:
        return [w.respawns for w in self._workers]

    def close(self) -> None:
        """Shut every worker down (idempotent).

        Close does not wait for in-flight tasks: a slot whose lock cannot
        be grabbed promptly is busy mid-roundtrip, so its shutdown message
        is skipped (sending would tear the pipe) and the join-timeout/kill
        below reaps the worker instead.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for index, worker in enumerate(self._workers):
            slot = self._worker_locks[index]
            acquired = slot.acquire(timeout=0.25)
            try:
                if acquired:
                    try:
                        worker.conn.send({"kind": "shutdown"})
                    except (OSError, ValueError, BrokenPipeError):
                        pass
            finally:
                if acquired:
                    slot.release()
        for worker in self._workers:
            worker.process.join(timeout=2)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2)
            try:
                worker.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- health --------------------------------------------------------------

    def ping(self, timeout_s: float = 5.0) -> List[bool]:
        """Round-trip every worker; dead workers are respawned and
        reported ``False`` for this check."""
        health: List[bool] = []
        for index in range(len(self._workers)):
            with self._worker_locks[index]:
                try:
                    reply = self._roundtrip(
                        index, {"kind": "ping"}, timeout_s
                    )
                    health.append(bool(reply.get("ok")))
                except WorkerCrash:
                    self._respawn(index)
                    health.append(False)
        return health

    def inject_crash(self, index: int, *, exitcode: int = 3) -> None:
        """Make worker ``index`` exit without replying (test hook)."""
        with self._worker_locks[index]:
            worker = self._workers[index]
            try:
                worker.conn.send({"kind": "crash", "exitcode": exitcode})
            except (OSError, ValueError, BrokenPipeError):
                return
            worker.process.join(timeout=5)

    # -- task execution ------------------------------------------------------

    def _roundtrip(self, index: int, payload: dict, timeout_s) -> dict:
        """One send/recv pair on worker ``index``'s pipe.

        The caller must hold ``self._worker_locks[index]``: the pipe is a
        plain duplex channel with no request routing, so the slot lock is
        what guarantees a reply goes back to the thread that sent the
        matching task.
        """
        worker = self._workers[index]
        try:
            worker.conn.send(payload)
            if timeout_s is not None:
                if not worker.conn.poll(timeout_s):
                    raise WorkerTimeout(
                        f"worker {index} missed its {timeout_s}s deadline"
                    )
            return worker.conn.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise WorkerCrash(f"worker {index} died: {exc}") from exc

    def run_task(
        self,
        task: dict,
        *,
        worker_index: int = 0,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """Run one task with crash recovery; degrades in-process on
        exhausted retries.  The reply carries a ``_meta`` dict with the
        worker index, retry count, and whether it degraded."""
        if self._closed:
            raise ReproError("the shard worker pool is closed")
        timeout = timeout_s if timeout_s is not None else self.task_timeout_s
        index = worker_index % len(self._workers)
        slot = self._worker_locks[index]
        self._notify(EVENT_TASK)
        retries = 0
        while retries <= self.max_retries:
            # The slot lock covers the whole attempt — worker lookup, the
            # snapshot-cache check, the pipe roundtrip, and the respawn on
            # crash — so concurrent requests sharing the pool can never
            # interleave on one pipe or double-respawn a worker.  The
            # backoff sleep happens outside it.
            crashed = False
            with slot:
                worker = self._workers[index]
                payload = dict(task)
                digest = payload.get("db_digest")
                if digest is not None and digest in worker.seen:
                    payload.pop("database", None)
                try:
                    reply = self._roundtrip(index, payload, timeout)
                except WorkerCrash as crash:
                    timed_out = isinstance(crash, WorkerTimeout)
                    self._notify(
                        EVENT_TIMEOUT if timed_out else EVENT_CRASH
                    )
                    self._respawn(index)
                    crashed = True
                else:
                    if digest is not None:
                        worker.seen.add(digest)
            if crashed:
                retries += 1
                if retries <= self.max_retries:
                    self._notify(EVENT_RETRY)
                    time.sleep(self.backoff_s * (2 ** (retries - 1)))
                continue
            reply["_meta"] = {
                "worker": index,
                "retries": retries,
                "degraded": False,
            }
            return reply
        # Retries exhausted: degrade to in-process evaluation (the task's
        # own fuel/depth budgets still bound it).
        self._notify(EVENT_DEGRADED)
        degraded_task = dict(task)
        trace = degraded_task.get("trace")
        if trace:
            # In-process spans get a distinct prefix so the merged tree
            # shows where the degraded evaluation actually ran.
            degraded_task["trace"] = {
                **trace,
                "prefix": f"local{os.getpid()}t{next(_TASK_IDS)}",
            }
        reply = execute_task(degraded_task)
        reply["_meta"] = {
            "worker": None,
            "retries": retries,
            "degraded": True,
        }
        return reply

    def _run_task_reply(
        self,
        task: dict,
        worker_index: int,
        timeout_s: Optional[float],
    ) -> dict:
        """``run_task`` with the never-raises batch contract: coordinator
        failures (e.g. ``close()`` racing an in-flight batch) become error
        replies so batch positions always stay aligned with their tasks."""
        try:
            return self.run_task(
                task, worker_index=worker_index, timeout_s=timeout_s
            )
        except Exception as exc:  # noqa: BLE001 - replies, never raises
            return {
                "ok": False,
                "error_kind": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "_meta": {
                    "worker": worker_index,
                    "retries": 0,
                    "degraded": False,
                },
            }

    def run_batch(
        self,
        tasks: List[dict],
        *,
        timeout_s: Optional[float] = None,
    ) -> List[dict]:
        """Run ``tasks`` concurrently (task ``i`` starts on worker ``i mod
        size``); exactly one reply per task, in task order, never an
        exception — failures (including coordinator-side ones) are error
        replies at their task's position."""
        if not tasks:
            return []
        if len(tasks) == 1:
            return [self._run_task_reply(tasks[0], 0, timeout_s)]
        size = len(self._workers)
        replies: List[Optional[dict]] = [None] * len(tasks)
        # Each worker's pipe is serial, so tasks assigned to the same
        # worker run back-to-back on one coordinator thread per worker.
        by_worker: Dict[int, List[int]] = {}
        for position in range(len(tasks)):
            by_worker.setdefault(position % size, []).append(position)

        def drive(worker_index: int, positions: List[int]) -> None:
            for position in positions:
                replies[position] = self._run_task_reply(
                    tasks[position], worker_index, timeout_s
                )

        threads = [
            threading.Thread(
                target=drive, args=(worker_index, positions), daemon=True
            )
            for worker_index, positions in by_worker.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return [
            reply
            if reply is not None
            else {
                "ok": False,
                "error_kind": "error",
                "error": "shard task produced no reply",
                "_meta": {"worker": None, "retries": 0, "degraded": False},
            }
            for reply in replies
        ]
