"""Simple types, functionality order, unification, and type reconstruction.

Implements the typing machinery of Sections 2.1 and 2.2:

* simple types over the two fixed base types ``o`` (atomic constants) and
  ``g`` (the result-type variable of ``Eq``), plus reconstruction variables,
* *functionality order*: ``order(t) = 0`` for base types and variables,
  ``order(a -> b) = max(1 + order(a), order(b))``,
* first-order unification with occurs check,
* Curry-style principal-type reconstruction for TLC= (:mod:`.infer`),
* core-ML= reconstruction with let-polymorphism (:mod:`.ml`),
* Church-style checking of annotated terms (:mod:`.check`).
"""

from repro.types.types import (
    Arrow,
    BaseG,
    BaseO,
    Type,
    TypeVar,
    arrow,
    arrow_parts,
    bool_type,
    free_type_vars,
    relation_type,
    type_size,
)
from repro.types.order import order, derivation_order, ground
from repro.types.pretty import pretty_type
from repro.types.unify import Substitution, unify
from repro.types.infer import TypingResult, infer, principal_type
from repro.types.ml import MLTypingResult, ml_infer, ml_principal_type
from repro.types.check import check_church

__all__ = [
    "Arrow",
    "BaseG",
    "BaseO",
    "MLTypingResult",
    "Substitution",
    "Type",
    "TypeVar",
    "TypingResult",
    "arrow",
    "arrow_parts",
    "bool_type",
    "check_church",
    "derivation_order",
    "free_type_vars",
    "ground",
    "infer",
    "ml_infer",
    "ml_principal_type",
    "order",
    "pretty_type",
    "principal_type",
    "relation_type",
    "type_size",
    "unify",
]
