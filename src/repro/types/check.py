"""Church-style type checking of fully annotated terms (Section 2.1).

In the Church style "types and terms are defined together and lambda-bound
variables are annotated with their type".  :func:`check_church` verifies a
fully annotated term against the (Var), (Abs), (App) rules — no inference,
no unification — and returns the computed type.  ``let`` is checked
monomorphically (use :mod:`repro.types.ml` for polymorphic lets).

This is the executable counterpart of the paper's "for clarity of
exposition we often provide the annotations in Church style": every encoded
operator in :mod:`repro.queries.operators` carries annotations, and the test
suite checks them with this module *and* reconstructs them Curry-style,
verifying the two agree.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.errors import TypeInferenceError
from repro.lam.terms import Abs, App, Const, EqConst, Let, Term, Var
from repro.types.types import Arrow, Type, eq_type
from repro.types.types import O as TYPE_O


def check_church(
    term: Term, env: Optional[Mapping[str, Type]] = None
) -> Type:
    """Compute the type of a fully annotated term.

    Raises :class:`TypeInferenceError` when an annotation is missing or the
    term does not check.
    """
    context: Dict[str, List[Type]] = {}
    for name, type_ in (env or {}).items():
        context[name] = [type_]

    def visit(node: Term) -> Type:
        if isinstance(node, Var):
            stack = context.get(node.name)
            if not stack:
                raise TypeInferenceError(
                    f"free variable {node.name} has no declared type"
                )
            return stack[-1]
        if isinstance(node, Const):
            return TYPE_O
        if isinstance(node, EqConst):
            return eq_type()
        if isinstance(node, Abs):
            if node.annotation is None:
                raise TypeInferenceError(
                    f"missing annotation on binder {node.var} "
                    f"(Church-style checking needs fully annotated terms)"
                )
            context.setdefault(node.var, []).append(node.annotation)
            try:
                body_type = visit(node.body)
            finally:
                context[node.var].pop()
            return Arrow(node.annotation, body_type)
        if isinstance(node, App):
            fn_type = visit(node.fn)
            arg_type = visit(node.arg)
            if not isinstance(fn_type, Arrow):
                raise TypeInferenceError(
                    f"applying a non-function of type {fn_type}"
                )
            if fn_type.left != arg_type:
                raise TypeInferenceError(
                    f"argument type mismatch: expected {fn_type.left}, "
                    f"got {arg_type}"
                )
            return fn_type.right
        if isinstance(node, Let):
            bound_type = visit(node.bound)
            context.setdefault(node.var, []).append(bound_type)
            try:
                return visit(node.body)
            finally:
                context[node.var].pop()
        raise TypeError(f"not a term: {node!r}")

    return visit(term)


def fully_annotated(term: Term) -> bool:
    """True iff every lambda binder in ``term`` carries an annotation."""
    from repro.lam.terms import subterms

    return all(
        node.annotation is not None
        for node in subterms(term)
        if isinstance(node, Abs)
    )
