"""Curry-style principal-type reconstruction for TLC= (Section 2.1).

Implements the inference rules (Var), (Abs), (App) plus the fixed typings
``o_i : o`` and ``Eq : o -> o -> g -> g -> g``.  ``let x = M in N`` is
accepted here too but typed *monomorphically* (exactly as ``(λx. N) M``
would be) — the polymorphic (Let) rule lives in :mod:`repro.types.ml`.

The entry point :func:`infer` returns a :class:`TypingResult` carrying the
principal type, the types of all subterm occurrences (needed for
order-of-derivation analysis, Section 5.1), and the final substitution.
Church-style annotations on binders, when present, are unified against the
inferred binder types, so an annotated term infers successfully only if its
annotations are consistent.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import OrderBoundError, TypeInferenceError
from repro.lam.terms import Abs, App, Const, EqConst, Let, Term, Var
from repro.types.order import ground, order
from repro.types.types import Arrow, Type, TypeVar, eq_type
from repro.types.types import O as TYPE_O
from repro.types.unify import Substitution, UnificationError


@dataclass
class TypingResult:
    """Outcome of a successful reconstruction.

    Attributes:
        type: the principal type of the whole term (fully substituted).
        subst: the final substitution (triangular form).
        occurrence_types: raw (unsubstituted) type of every subterm
            *occurrence*, keyed by a path of child indices from the root —
            the same subterm object may occur at several paths with
            different types.
    """

    type: Type
    subst: Substitution
    occurrence_types: Dict[Tuple[int, ...], Type]

    def occurrence_type(self, path: Tuple[int, ...]) -> Type:
        """The fully substituted type of the occurrence at ``path``."""
        return self.subst.apply(self.occurrence_types[path])

    def derivation_order(self) -> int:
        """The least order bound admitting this derivation: the maximum,
        over all subterm occurrences, of the order of the minimal ground
        instance of the occurrence's type."""
        result = 0
        for raw in self.occurrence_types.values():
            result = max(result, order(ground(self.subst.apply(raw))))
        return result


class _VarSupply:
    """Fresh type-variable supply (``?t0, ?t1, ...``).

    The ``?`` prefix keeps generated variables disjoint from anything a user
    can write in an annotation."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def fresh(self) -> TypeVar:
        return TypeVar(f"?t{next(self._counter)}")


def infer(
    term: Term,
    env: Optional[Mapping[str, Type]] = None,
    *,
    check_annotations: bool = True,
) -> TypingResult:
    """Reconstruct the principal type of ``term`` under ``env``.

    ``env`` assigns types to free term variables; free variables not in the
    environment get fresh type variables (so any closed-up typing is still
    principal).  Raises :class:`TypeInferenceError` when no typing exists.
    """
    import sys

    from repro.lam.terms import term_size

    # The checker recurses along the term's spine; deep but legal terms
    # (e.g. 1000-fold applications) need stack room beyond the default.
    needed = 2 * term_size(term) + 1000
    if sys.getrecursionlimit() < needed:
        sys.setrecursionlimit(needed)
    supply = _VarSupply()
    subst = Substitution()
    occurrence_types: Dict[Tuple[int, ...], Type] = {}
    context: Dict[str, List[Type]] = {}
    for name, type_ in (env or {}).items():
        context[name] = [type_]

    def lookup(name: str) -> Type:
        stack = context.get(name)
        if stack:
            return stack[-1]
        # Free variable without an assumption: invent one and remember it so
        # all occurrences share it (the context Gamma is a *function*).
        fresh = supply.fresh()
        context[name] = [fresh]
        return fresh

    def visit(node: Term, path: Tuple[int, ...]) -> Type:
        if isinstance(node, Var):
            result: Type = lookup(node.name)
        elif isinstance(node, Const):
            result = TYPE_O
        elif isinstance(node, EqConst):
            result = eq_type()
        elif isinstance(node, Abs):
            arg_type: Type = supply.fresh()
            if check_annotations and node.annotation is not None:
                _unify(subst, arg_type, node.annotation, node)
            context.setdefault(node.var, []).append(arg_type)
            try:
                body_type = visit(node.body, path + (0,))
            finally:
                context[node.var].pop()
            result = Arrow(arg_type, body_type)
        elif isinstance(node, App):
            fn_type = visit(node.fn, path + (0,))
            arg_type = visit(node.arg, path + (1,))
            out = supply.fresh()
            _unify(subst, fn_type, Arrow(arg_type, out), node)
            result = out
        elif isinstance(node, Let):
            # Monomorphic let: type as ((λx. body) bound).
            bound_type = visit(node.bound, path + (0,))
            context.setdefault(node.var, []).append(bound_type)
            try:
                result = visit(node.body, path + (1,))
            finally:
                context[node.var].pop()
        else:
            raise TypeError(f"not a term: {node!r}")
        occurrence_types[path] = result
        return result

    result_type = visit(term, ())
    return TypingResult(
        type=subst.apply(result_type),
        subst=subst,
        occurrence_types=occurrence_types,
    )


def _unify(subst: Substitution, left: Type, right: Type, node: Term) -> None:
    try:
        subst.unify(left, right)
    except UnificationError as exc:
        raise TypeInferenceError(
            f"cannot type {node.pretty()}: {exc}"
        ) from exc


def principal_type(term: Term, env: Optional[Mapping[str, Type]] = None) -> Type:
    """The principal type of ``term`` (Property 3 of Section 2.1)."""
    return infer(term, env).type


def typable(term: Term, env: Optional[Mapping[str, Type]] = None) -> bool:
    """Is ``term`` a term of TLC= (Property 4: decidable typability)?"""
    try:
        infer(term, env)
        return True
    except TypeInferenceError:
        return False


def term_order(term: Term, env: Optional[Mapping[str, Type]] = None) -> int:
    """The functionality order of ``term``: the order of the minimal ground
    instance of its principal type (Section 2.1)."""
    return order(ground(principal_type(term, env)))


def check_order_bound(
    term: Term,
    bound: int,
    env: Optional[Mapping[str, Type]] = None,
) -> TypingResult:
    """Type ``term`` in the order-``bound`` fragment of TLC=.

    The fragment restricts *all* types in the derivation to order at most
    ``bound`` (Section 2.1, "Functionality Order").  Since grounding free
    type variables with ``o`` minimizes every order simultaneously, the term
    is in the fragment iff the grounded principal derivation fits.
    Raises :class:`OrderBoundError` otherwise.
    """
    result = infer(term, env)
    actual = result.derivation_order()
    if actual > bound:
        raise OrderBoundError(
            f"term requires derivation order {actual}, bound is {bound}"
        )
    return result
