"""core-ML= type reconstruction: Algorithm W with let-polymorphism.

Implements ML-typedness of Section 2.2.  The paper states the (Let) rule in
substitution style:

    Gamma |- E : t0        Gamma |- B[x := E] : t
    ----------------------------------------------
    Gamma |- let x = E in B : t

which is equivalent (for this calculus) to the classical
generalize-at-let discipline implemented here: the let-bound term is typed
once, its type is generalized over the variables not free in the
environment, and every use of the let variable receives a fresh instance.
:func:`ml_typable_by_expansion` implements the substitution-style rule
directly (type the expanded term, *and* the bound term itself); the test
suite checks the two agree.

Type reconstruction for core-ML is EXPTIME-complete in general [31, 32];
the exponential lives in the *tree size* of principal types, which is why
:class:`repro.types.unify.Substitution` keeps types in triangular (DAG)
form — see :mod:`repro.hardness` and benchmark B5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import OrderBoundError, TypeInferenceError
from repro.lam.terms import (
    Abs,
    App,
    Const,
    EqConst,
    Let,
    Term,
    Var,
    expand_lets,
)
from repro.types.order import ground, order
from repro.types.types import Arrow, Type, TypeVar, eq_type
from repro.types.types import O as TYPE_O
from repro.types.unify import Substitution, UnificationError


@dataclass(frozen=True)
class TypeScheme:
    """A quantified type ``forall q1 ... qn. body``."""

    quantified: Tuple[str, ...]
    body: Type

    def __str__(self) -> str:
        if not self.quantified:
            return str(self.body)
        names = " ".join(self.quantified)
        return f"forall {names}. {self.body}"


@dataclass
class MLTypingResult:
    """Outcome of a successful core-ML= reconstruction."""

    type: Type
    subst: Substitution
    occurrence_types: Dict[Tuple[int, ...], Type]
    let_schemes: Dict[Tuple[int, ...], TypeScheme]

    def derivation_order(self) -> int:
        """Max order over recorded occurrence types (minimal ground
        instances), as in :meth:`TypingResult.derivation_order`."""
        result = 0
        for raw in self.occurrence_types.values():
            result = max(result, order(ground(self.subst.apply(raw))))
        return result


def _walked_free_vars(type_: Type, subst: Substitution) -> Set[str]:
    """Free variables of ``type_`` under the triangular substitution."""
    result: Set[str] = set()
    stack = [type_]
    seen: Set[int] = set()
    while stack:
        node = subst.walk(stack.pop())
        if isinstance(node, TypeVar):
            result.add(node.name)
        elif isinstance(node, Arrow):
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append(node.left)
            stack.append(node.right)
    return result


def ml_infer(
    term: Term,
    env: Optional[Mapping[str, Type]] = None,
    *,
    check_annotations: bool = True,
    env_schemes: Optional[Mapping[str, TypeScheme]] = None,
) -> MLTypingResult:
    """Reconstruct the principal core-ML= type of ``term``.

    ``env`` assigns *monomorphic* types to free variables; ``env_schemes``
    assigns polymorphic schemes (used e.g. to treat the relation variables
    of an MLI=_i query term as let-bound, Definition 3.8).  Raises
    :class:`TypeInferenceError` if the term is not ML-typable.
    """
    import sys

    from repro.lam.terms import term_size

    needed = 2 * term_size(term) + 1000
    if sys.getrecursionlimit() < needed:
        sys.setrecursionlimit(needed)
    counter = itertools.count()
    subst = Substitution()
    occurrence_types: Dict[Tuple[int, ...], Type] = {}
    let_schemes: Dict[Tuple[int, ...], TypeScheme] = {}

    def fresh() -> TypeVar:
        return TypeVar(f"?m{next(counter)}")

    # The environment maps names to stacks of schemes (monomorphic types are
    # schemes with no quantified variables).
    context: Dict[str, List[TypeScheme]] = {}
    for name, type_ in (env or {}).items():
        context[name] = [TypeScheme((), type_)]
    for name, scheme in (env_schemes or {}).items():
        context[name] = [scheme]

    def env_free_vars() -> Set[str]:
        result: Set[str] = set()
        for stack in context.values():
            for scheme in stack:
                body_free = _walked_free_vars(scheme.body, subst)
                result |= body_free - set(scheme.quantified)
        return result

    def instantiate(scheme: TypeScheme) -> Type:
        if not scheme.quantified:
            return scheme.body
        renaming = {name: fresh() for name in scheme.quantified}
        # Memoized per walked node: principal types can be exponentially
        # large as trees but polynomial as DAGs, and instantiation must
        # preserve the sharing or Algorithm W itself goes exponential.
        memo: Dict[int, Type] = {}

        def rebuild(node: Type) -> Type:
            node_w = subst.walk(node)
            key = id(node_w)
            cached = memo.get(key)
            if cached is not None:
                return cached
            if isinstance(node_w, TypeVar):
                result: Type = renaming.get(node_w.name, node_w)
            elif isinstance(node_w, Arrow):
                result = Arrow(rebuild(node_w.left), rebuild(node_w.right))
            else:
                result = node_w
            memo[key] = result
            return result

        return rebuild(scheme.body)

    def visit(node: Term, path: Tuple[int, ...]) -> Type:
        if isinstance(node, Var):
            stack = context.get(node.name)
            if stack:
                result: Type = instantiate(stack[-1])
            else:
                # Unknown free variable: monomorphic fresh assumption shared
                # by all its occurrences.
                shared = fresh()
                context[node.name] = [TypeScheme((), shared)]
                result = shared
        elif isinstance(node, Const):
            result = TYPE_O
        elif isinstance(node, EqConst):
            result = eq_type()
        elif isinstance(node, Abs):
            arg_type: Type = fresh()
            if check_annotations and node.annotation is not None:
                _unify(subst, arg_type, node.annotation, node)
            context.setdefault(node.var, []).append(TypeScheme((), arg_type))
            try:
                body_type = visit(node.body, path + (0,))
            finally:
                context[node.var].pop()
            result = Arrow(arg_type, body_type)
        elif isinstance(node, App):
            fn_type = visit(node.fn, path + (0,))
            arg_type = visit(node.arg, path + (1,))
            out = fresh()
            _unify(subst, fn_type, Arrow(arg_type, out), node)
            result = out
        elif isinstance(node, Let):
            bound_type = visit(node.bound, path + (0,))
            generalizable = (
                _walked_free_vars(bound_type, subst) - env_free_vars()
            )
            scheme = TypeScheme(tuple(sorted(generalizable)), bound_type)
            let_schemes[path] = scheme
            context.setdefault(node.var, []).append(scheme)
            try:
                result = visit(node.body, path + (1,))
            finally:
                context[node.var].pop()
        else:
            raise TypeError(f"not a term: {node!r}")
        occurrence_types[path] = result
        return result

    result_type = visit(term, ())
    return MLTypingResult(
        type=subst.apply(result_type),
        subst=subst,
        occurrence_types=occurrence_types,
        let_schemes=let_schemes,
    )


def _unify(subst: Substitution, left: Type, right: Type, node: Term) -> None:
    try:
        subst.unify(left, right)
    except UnificationError as exc:
        raise TypeInferenceError(
            f"cannot ML-type {node.pretty()}: {exc}"
        ) from exc


def ml_principal_type(
    term: Term, env: Optional[Mapping[str, Type]] = None
) -> Type:
    """The principal core-ML= type of ``term``.

    Warning: the fully applied type can be exponentially large (Section 6);
    prefer :func:`ml_infer` and the triangular substitution when only
    typability or order information is needed.
    """
    return ml_infer(term, env).type


def ml_typable(term: Term, env: Optional[Mapping[str, Type]] = None) -> bool:
    """Is ``term`` ML-typed (Section 2.2)?"""
    try:
        ml_infer(term, env)
        return True
    except TypeInferenceError:
        return False


def ml_typable_by_expansion(
    term: Term, env: Optional[Mapping[str, Type]] = None
) -> bool:
    """Decide ML-typability via the paper's substitution-style (Let) rule:
    ``let x = E in B`` is typable iff ``E`` is typable and ``B[x := E]`` is.

    Exponential in the worst case — exists as an executable specification
    against which :func:`ml_typable` is property-tested.
    """
    from repro.lam.terms import subterms
    from repro.types.infer import typable

    # Every let-bound term must itself be typable (the rule's left premise),
    # even if the let variable never occurs in the body.
    for node in subterms(term):
        if isinstance(node, Let) and not _expansion_typable(node.bound, env):
            return False
    return _expansion_typable(term, env)


def _expansion_typable(term, env) -> bool:
    from repro.types.infer import typable

    return typable(expand_lets(term), env)


def ml_term_order(term: Term, env: Optional[Mapping[str, Type]] = None) -> int:
    """Order of the minimal ground instance of the principal ML type."""
    return order(ground(ml_principal_type(term, env)))


def ml_check_order_bound(
    term: Term,
    bound: int,
    env: Optional[Mapping[str, Type]] = None,
) -> MLTypingResult:
    """Type ``term`` in the order-``bound`` fragment of core-ML=.

    Raises :class:`OrderBoundError` when the minimal derivation order
    exceeds ``bound``."""
    result = ml_infer(term, env)
    actual = result.derivation_order()
    if actual > bound:
        raise OrderBoundError(
            f"term requires ML derivation order {actual}, bound is {bound}"
        )
    return result
