"""Functionality order (Section 2.1).

    order(t) = 0                         for a type variable or base type
    order(a -> b) = max(1 + order(a), order(b))

The order of a typed term is the order of its type; the order bound of the
fragments TLI=_i / MLI=_i constrains *all* types in the derivation, which is
captured by :func:`derivation_order`.
"""

from __future__ import annotations

from typing import Dict

from repro.types.types import Arrow, BaseO, Type, TypeVar


def order(type_: Type) -> int:
    """The functionality order of ``type_``."""
    # Iterative along the right spine (arrow chains can be long), recursive
    # into the argument positions: order(a1 -> ... -> ak -> r) with r not an
    # arrow is max_i(1 + order(a_i)), and 0 when k = 0.
    result = 0
    node = type_
    while isinstance(node, Arrow):
        result = max(result, 1 + order(node.left))
        node = node.right
    return result


def ground(type_: Type, default: Type = BaseO()) -> Type:
    """Replace every reconstruction variable with ``default``.

    Grounding with ``o`` (order 0) realizes the *minimal-order* instance of
    a type: substitution can only raise the order of a variable's position,
    never lower it, so ``order(ground(t))`` is the least order among all
    ground instances of ``t``.  This implements the paper's Section 3.2
    convention that all typings use only the fixed variables ``o`` and
    ``g``.
    """
    if isinstance(type_, TypeVar):
        return default
    if isinstance(type_, Arrow):
        return Arrow(ground(type_.left, default), ground(type_.right, default))
    return type_


def derivation_order(subterm_types: Dict[object, Type]) -> int:
    """The order of a typing derivation: the maximum order over all types it
    assigns.  Takes the map produced by the inference engines (see
    :class:`repro.types.infer.TypingResult`) and measures the minimal-order
    ground instance of each assigned type."""
    if not subterm_types:
        return 0
    return max(order(ground(t)) for t in subterm_types.values())
