"""Functionality order (Section 2.1).

    order(t) = 0                         for a type variable or base type
    order(a -> b) = max(1 + order(a), order(b))

The order of a typed term is the order of its type; the order bound of the
fragments TLI=_i / MLI=_i constrains *all* types in the derivation, which is
captured by :func:`derivation_order`.

All traversals here are iterative and memoized on node identity: the
Section 6 lower-bound types are deeply *left*-nested (argument positions
inside argument positions) and principal types can be exponentially large
trees that are only polynomial as shared DAGs, so neither Python's
recursion limit nor tree-sized work is acceptable.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.types.types import Arrow, BaseO, Type, TypeVar


def order(type_: Type) -> int:
    """The functionality order of ``type_``.

    Unfolding the recurrence, the order is the maximum over all ``Arrow``
    nodes of ``1 +`` the number of *argument* (left) edges on the path from
    the root — 0 when there is no arrow at all.  That form needs only a
    work stack of ``(node, left_edges)`` pairs, so arbitrarily deep
    argument nesting is fine.  Shared subtrees are pruned: a node reached
    again with no more left-edge weight than before cannot improve the
    maximum.
    """
    result = 0
    best: Dict[int, int] = {}
    stack: List[Tuple[Type, int]] = [(type_, 0)]
    while stack:
        node, lefts = stack.pop()
        if not isinstance(node, Arrow):
            continue
        seen = best.get(id(node))
        if seen is not None and seen >= lefts:
            continue
        best[id(node)] = lefts
        if lefts + 1 > result:
            result = lefts + 1
        stack.append((node.left, lefts + 1))
        stack.append((node.right, lefts))
    return result


def ground(type_: Type, default: Type = BaseO()) -> Type:
    """Replace every reconstruction variable with ``default``.

    Grounding with ``o`` (order 0) realizes the *minimal-order* instance of
    a type: substitution can only raise the order of a variable's position,
    never lower it, so ``order(ground(t))`` is the least order among all
    ground instances of ``t``.  This implements the paper's Section 3.2
    convention that all typings use only the fixed variables ``o`` and
    ``g``.

    The rebuild is an iterative post-order memoized on node identity, so
    shared subtrees are grounded once and sharing is preserved in the
    result (tree-exponential principal types stay DAG-polynomial).
    """
    done: Dict[int, Type] = {}
    stack: List[Tuple[Type, bool]] = [(type_, False)]
    while stack:
        node, ready = stack.pop()
        if id(node) in done:
            continue
        if isinstance(node, TypeVar):
            done[id(node)] = default
        elif isinstance(node, Arrow):
            if not ready:
                stack.append((node, True))
                stack.append((node.right, False))
                stack.append((node.left, False))
            else:
                left = done[id(node.left)]
                right = done[id(node.right)]
                if left is node.left and right is node.right:
                    done[id(node)] = node
                else:
                    done[id(node)] = Arrow(left, right)
        else:
            done[id(node)] = node
    return done[id(type_)]


def min_ground_order(type_: Type) -> int:
    """``order(ground(type_))`` without materializing the ground type.

    Grounding with ``o`` turns variables into order-0 leaves, which is how
    :func:`order` already treats every non-arrow node — so the minimal
    ground order of a type is just its order.  Kept as a named operation
    because call sites mean "the least order among all ground instances"
    (Lemma 3.9 / Section 3.2), not "the order of this open type".
    """
    return order(type_)


def derivation_order(subterm_types: Mapping[object, Type]) -> int:
    """The order of a typing derivation: the maximum order over all types it
    assigns.  Takes the map produced by the inference engines (see
    :class:`repro.types.infer.TypingResult`) and measures the minimal-order
    ground instance of each assigned type."""
    if not subterm_types:
        return 0
    return max(min_ground_order(t) for t in subterm_types.values())
