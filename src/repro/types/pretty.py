"""Rendering of types in the paper's concrete syntax.

Arrows are right-associative; parentheses appear only on the left of an
arrow.  The two fixed base types print as ``o`` and ``g``.
"""

from __future__ import annotations

from repro.types.types import Arrow, BaseG, BaseO, Type, TypeVar


def pretty_type(type_: Type) -> str:
    """Render ``type_`` as a parseable string (see the term parser's
    annotation grammar)."""
    if isinstance(type_, TypeVar):
        return type_.name
    if isinstance(type_, BaseO):
        return "o"
    if isinstance(type_, BaseG):
        return "g"
    if isinstance(type_, Arrow):
        left = pretty_type(type_.left)
        if isinstance(type_.left, Arrow):
            left = f"({left})"
        return f"{left} -> {pretty_type(type_.right)}"
    raise TypeError(f"not a type: {type_!r}")
