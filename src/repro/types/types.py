"""Simple type syntax (Section 2.1).

The paper's types are ``T ::= t | (T -> T)`` over type variables, with two
*fixed* variables singled out: ``o`` (the type of atomic constants) and the
variable — written gamma here as ``g`` — fixed for the typing
``Eq : o -> o -> g -> g -> g``.  Because the fixed variables may never be
instantiated (the constants' types are pinned), we model them as rigid base
types :class:`BaseO` and :class:`BaseG`; :class:`TypeVar` is reserved for
genuinely substitutable reconstruction variables.

The paper's Section 3.2 convention — "all typings use only the distinct
type variables o and g" — corresponds here to *ground* types: types built
from ``BaseO``/``BaseG`` and arrows only (see :func:`repro.types.order.ground`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple


class Type:
    """Base class of all type nodes."""

    __slots__ = ()

    def __rshift__(self, other: "Type") -> "Arrow":
        """Sugar: ``a >> b`` builds the arrow type ``a -> b``."""
        return Arrow(self, other)

    def __str__(self) -> str:
        from repro.types.pretty import pretty_type

        return pretty_type(self)


@dataclass(frozen=True, repr=True, slots=True)
class TypeVar(Type):
    """A substitutable type variable used during reconstruction."""

    name: str


@dataclass(frozen=True, repr=True, slots=True)
class BaseO(Type):
    """The fixed type ``o`` of atomic constants."""


@dataclass(frozen=True, repr=True, slots=True)
class BaseG(Type):
    """The fixed type ``g`` (the paper's gamma) in ``Eq``'s result."""


@dataclass(frozen=True, repr=True, slots=True)
class Arrow(Type):
    """The function type ``left -> right``."""

    left: Type
    right: Type


# Shared singletons — the classes are value-equal anyway, these just avoid
# allocation churn in hot paths.
O = BaseO()  # noqa: E741 — the paper's base type is literally named O
G = BaseG()


def arrow(*types: Type) -> Type:
    """Right-nested arrow: ``arrow(a, b, c)`` is ``a -> (b -> c)``.

    Requires at least one type; with exactly one it returns it unchanged.
    """
    if not types:
        raise ValueError("arrow() needs at least one type")
    result = types[-1]
    for part in reversed(types[:-1]):
        result = Arrow(part, result)
    return result


def arrow_parts(type_: Type) -> Tuple[List[Type], Type]:
    """Split ``a1 -> ... -> ak -> r`` into ``([a1, ..., ak], r)``.

    ``r`` is not an arrow; for non-arrow inputs the argument list is empty.
    """
    args: List[Type] = []
    node = type_
    while isinstance(node, Arrow):
        args.append(node.left)
        node = node.right
    return args, node


def free_type_vars(type_: Type) -> FrozenSet[str]:
    """Names of the reconstruction variables occurring in ``type_``."""
    if isinstance(type_, TypeVar):
        return frozenset((type_.name,))
    if isinstance(type_, Arrow):
        return free_type_vars(type_.left) | free_type_vars(type_.right)
    return frozenset()


def type_size(type_: Type) -> int:
    """Number of nodes in ``type_`` (tree size, not DAG size)."""
    if isinstance(type_, Arrow):
        return 1 + type_size(type_.left) + type_size(type_.right)
    return 1


def type_dag_size(type_: Type) -> int:
    """Number of *distinct* subterms of ``type_`` — the size of its maximally
    shared DAG representation.  The gap between this and :func:`type_size`
    is what makes exponential principal types representable (Section 6)."""
    seen = set()

    def walk(node: Type) -> None:
        if node in seen:
            return
        seen.add(node)
        if isinstance(node, Arrow):
            walk(node.left)
            walk(node.right)

    walk(type_)
    return len(seen)


# ---------------------------------------------------------------------------
# The paper's standard type abbreviations (Sections 2.3 and 3.1)
# ---------------------------------------------------------------------------

def bool_type(result: Type = G) -> Type:
    """``Bool := g -> g -> g`` — Church booleans (Section 2.3)."""
    return arrow(result, result, result)


def int_type(base: Type = G) -> Type:
    """``Int := (g -> g) -> g -> g`` — Church numerals (Section 2.3)."""
    return arrow(Arrow(base, base), base, base)


def relation_type(arity: int, accumulator: Type = G) -> Type:
    """``o^k_d := (o -> ... -> o -> d -> d) -> d -> d`` (Section 3.1).

    The type of an encoded ``arity``-ary relation used as a list iterator
    with accumulator type ``accumulator`` (the paper writes the accumulator
    type as a superscript).  Its order is ``order(accumulator) + 2``.
    """
    if arity < 0:
        raise ValueError(f"arity must be nonnegative, got {arity}")
    cons = arrow(*([O] * arity), accumulator, accumulator)
    return arrow(cons, accumulator, accumulator)


def characteristic_type(arity: int, result: Type = G) -> Type:
    """``k-ary characteristic function: o -> ... -> o -> Bool`` (Section 4).

    The order-1 intermediate representation of relations used inside the
    TLI=1 fixpoint iteration.
    """
    if arity < 0:
        raise ValueError(f"arity must be nonnegative, got {arity}")
    return arrow(*([O] * arity), bool_type(result))


def eq_type() -> Type:
    """The fixed type of the equality constant: ``o -> o -> g -> g -> g``."""
    return arrow(O, O, G, G, G)


def tuple_consumer_type(arity: int, accumulator: Type = G) -> Type:
    """``o -> ... -> o -> d -> d`` — the type of a list iterator's "loop
    body" (the ``c`` argument of a relation encoding)."""
    return arrow(*([O] * arity), accumulator, accumulator)
