"""First-order unification with occurs check.

The reconstruction algorithms of the paper "use first-order unification and
reconstruct types" (Section 2.1).  We implement the standard
substitution-in-triangular-form approach: a :class:`Substitution` maps
variable names to types whose variables may themselves be bound, and
:meth:`Substitution.walk` / :meth:`Substitution.apply` chase bindings on
demand.  This keeps unification near-linear in practice and — crucially for
the Section 6 experiments — lets principal types be *represented* compactly
even when their tree size is exponential.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import UnificationError
from repro.types.types import Arrow, BaseG, BaseO, Type, TypeVar


class Substitution:
    """A mutable triangular substitution over type variables."""

    def __init__(self) -> None:
        self._bindings: Dict[str, Type] = {}

    def __len__(self) -> int:
        return len(self._bindings)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def bind(self, name: str, type_: Type) -> None:
        """Bind ``name`` to ``type_``.  Callers must have walked ``name``."""
        if name in self._bindings:  # pragma: no cover - internal invariant
            raise AssertionError(f"variable {name} already bound")
        self._bindings[name] = type_

    def walk(self, type_: Type) -> Type:
        """Chase variable bindings until the head is not a bound variable."""
        while isinstance(type_, TypeVar):
            bound = self._bindings.get(type_.name)
            if bound is None:
                return type_
            type_ = bound
        return type_

    def apply(self, type_: Type) -> Type:
        """Fully substitute ``type_`` — may be exponentially larger than the
        triangular representation as a *tree*, but the result preserves
        DAG sharing: the memo is keyed by node identity (hashing the nodes
        themselves would re-traverse shared structure exponentially often).
        """
        memo: Dict[int, Type] = {}

        def go(node: Type) -> Type:
            node = self.walk(node)
            key = id(node)
            cached = memo.get(key)
            if cached is not None:
                return cached
            if isinstance(node, Arrow):
                result: Type = Arrow(go(node.left), go(node.right))
            else:
                result = node
            memo[key] = result
            return result

        return go(type_)

    def occurs(self, name: str, type_: Type) -> bool:
        """Does variable ``name`` occur in ``type_`` (after walking)?"""
        stack = [type_]
        seen = set()
        while stack:
            node = self.walk(stack.pop())
            if isinstance(node, TypeVar):
                if node.name == name:
                    return True
            elif isinstance(node, Arrow):
                if id(node) in seen:
                    continue
                seen.add(id(node))
                stack.append(node.left)
                stack.append(node.right)
        return False

    def unify(self, left: Type, right: Type) -> None:
        """Destructively extend this substitution to unify the two types.

        Raises :class:`UnificationError` on a clash or occurs-check failure.
        Iterative with a work stack and a processed-pair cache so that
        DAG-shaped problems (exponential tree size) stay polynomial.
        """
        work = [(left, right)]
        done = set()
        while work:
            a, b = work.pop()
            a = self.walk(a)
            b = self.walk(b)
            # Identity and *atomic* equality only: structural equality on
            # deep types would re-traverse shared structure exponentially.
            if a is b:
                continue
            if isinstance(a, TypeVar) and isinstance(b, TypeVar):
                if a.name == b.name:
                    continue
            key = (id(a), id(b))
            if key in done:
                continue
            done.add(key)
            if isinstance(a, TypeVar):
                if self.occurs(a.name, b):
                    raise UnificationError(
                        f"occurs check: {a.name} in {b}"
                    )
                self.bind(a.name, b)
            elif isinstance(b, TypeVar):
                if self.occurs(b.name, a):
                    raise UnificationError(
                        f"occurs check: {b.name} in {a}"
                    )
                self.bind(b.name, a)
            elif isinstance(a, Arrow) and isinstance(b, Arrow):
                work.append((a.right, b.right))
                work.append((a.left, b.left))
            elif isinstance(a, BaseO) and isinstance(b, BaseO):
                continue
            elif isinstance(a, BaseG) and isinstance(b, BaseG):
                continue
            else:
                raise UnificationError(f"cannot unify {a} with {b}")

    def copy(self) -> "Substitution":
        """An independent snapshot (used by backtracking callers)."""
        clone = Substitution()
        clone._bindings = dict(self._bindings)
        return clone


def unify(left: Type, right: Type) -> Substitution:
    """Unify two types from scratch, returning the resulting substitution."""
    subst = Substitution()
    subst.unify(left, right)
    return subst


def unifiable(left: Type, right: Type) -> bool:
    """True iff the two types unify."""
    try:
        unify(left, right)
        return True
    except UnificationError:
        return False
