"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.db.generators import (
    constant_universe,
    random_database,
    random_graph_relation,
    random_relation,
)
from repro.db.relations import Database, Relation
from repro.lam.terms import Abs, App, Const, EqConst, Let, Term, Var


# ---------------------------------------------------------------------------
# Databases
# ---------------------------------------------------------------------------

@pytest.fixture
def small_db() -> Database:
    """A deterministic two-relation database used across integration tests."""
    return random_database([2, 2], [5, 4], universe_size=4, seed=11)


@pytest.fixture
def tiny_graph() -> Relation:
    return random_graph_relation(5, 0.3, seed=7)


def transitive_closure(rel: Relation) -> frozenset:
    """Reference transitive closure used as ground truth."""
    edges = set(rel.tuples)
    while True:
        new = {
            (a, d)
            for (a, b) in edges
            for (c, d) in edges
            if b == c
        } - edges
        if not new:
            return frozenset(edges)
        edges |= new


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

constant_names = st.sampled_from(constant_universe(6))
variable_names = st.sampled_from(["x", "y", "z", "f", "g", "h"])


@st.composite
def untyped_terms(draw, max_depth: int = 5) -> Term:
    """Arbitrary (possibly untypable) terms for syntax-level properties.

    Reduction-level tests must not use these (untyped terms may diverge);
    they exercise parsing, printing, substitution, and alpha-conversion.
    """
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    return draw(_term_at(depth))


def _term_at(depth: int):
    leaf = st.one_of(
        variable_names.map(Var),
        constant_names.map(Const),
        st.just(EqConst()),
    )
    if depth == 0:
        return leaf
    smaller = st.deferred(lambda: _term_at(depth - 1))
    return st.one_of(
        leaf,
        st.builds(App, smaller, smaller),
        st.builds(Abs, variable_names, smaller),
        st.builds(Let, variable_names, smaller, smaller),
    )


@st.composite
def relations(draw, max_arity: int = 3, max_size: int = 6) -> Relation:
    arity = draw(st.integers(min_value=0, max_value=max_arity))
    size = draw(st.integers(min_value=0, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_relation(arity, size, constant_universe(5), seed=seed)


@st.composite
def boolean_lists(draw, max_size: int = 8):
    return draw(
        st.lists(st.booleans(), min_size=0, max_size=max_size)
    )
