"""Tests for alpha-equivalence and de Bruijn conversion."""

from hypothesis import given

from repro.lam.alpha import (
    alpha_equal,
    alpha_key,
    canonical_names,
    from_debruijn,
    to_debruijn,
)
from repro.lam.subst import rename_bound
from repro.lam.terms import Abs, App, Const, EqConst, Let, Var, app, lam
from tests.conftest import untyped_terms


class TestAlphaEqual:
    def test_renamed_binder(self):
        assert alpha_equal(Abs("x", Var("x")), Abs("y", Var("y")))

    def test_free_variables_matter(self):
        assert not alpha_equal(Var("x"), Var("y"))

    def test_shadowing_distinguished(self):
        left = Abs("x", Abs("x", Var("x")))
        right = Abs("x", Abs("y", Var("x")))
        assert not alpha_equal(left, right)

    def test_paper_example(self):
        # λx. λy. y alpha-converts to λx. λz. z (Section 2.1).
        assert alpha_equal(
            lam(["x", "y"], Var("y")), lam(["x", "z"], Var("z"))
        )

    def test_lets_alpha(self):
        assert alpha_equal(
            Let("x", Const("o1"), Var("x")),
            Let("y", Const("o1"), Var("y")),
        )

    def test_structure_matters(self):
        assert not alpha_equal(
            app(Var("f"), Var("x")), app(Var("x"), Var("f"))
        )

    def test_eq_constant(self):
        assert alpha_equal(EqConst(), EqConst())
        assert not alpha_equal(EqConst(), Const("Eq"))


class TestDeBruijnRoundTrip:
    @given(untyped_terms())
    def test_roundtrip_is_alpha_equal(self, term):
        assert alpha_equal(from_debruijn(to_debruijn(term)), term)

    @given(untyped_terms())
    def test_canonical_names_idempotent(self, term):
        once = canonical_names(term)
        assert canonical_names(once) == once

    @given(untyped_terms(), untyped_terms())
    def test_key_equality_iff_alpha_equal(self, left, right):
        assert (alpha_key(left) == alpha_key(right)) == alpha_equal(
            left, right
        )

    def test_free_variable_name_collision(self):
        # A free variable named like a generated binder must not be
        # captured by the roundtrip.
        term = Abs("a", Var("x0"))
        result = from_debruijn(to_debruijn(term))
        assert alpha_equal(result, term)

    @given(untyped_terms())
    def test_rename_bound_preserves_key(self, term):
        assert alpha_key(rename_bound(term)) == alpha_key(term)
