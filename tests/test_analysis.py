"""Tests for the static query certifier (:mod:`repro.analysis`)."""

from pathlib import Path

import pytest

from repro.analysis import (
    CODES,
    DatabaseStats,
    Severity,
    analyze,
    analyze_fixpoint,
    analyze_term,
    collect_lam_files,
    fuel_budget,
    load_lam_file,
    load_lam_source,
    operator_library_targets,
    render_reports_json,
    term_cost_profile,
)
from repro.analysis.corpus import CorpusError
from repro.db.generators import random_database
from repro.db.relations import Database, Relation
from repro.db.encode import encode_database
from repro.lam.nbe import nbe_normalize_counted
from repro.lam.parser import parse
from repro.lam.terms import app
from repro.queries.fixpoint import FixpointQuery, transitive_closure_query
from repro.queries.language import QueryArity
from repro.relalg.ast import Base, Difference
from repro.types.infer import infer
from repro.types.order import min_ground_order
from repro.types.types import Arrow, BaseO, TypeVar

REPO = Path(__file__).resolve().parent.parent
CORPUS = REPO / "tests" / "fixtures" / "lint_corpus"
EXAMPLES = REPO / "examples" / "terms"

SIG22 = QueryArity((2, 2), 2)
SWAP = parse(r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n")


def run_target(target):
    return analyze(
        target.plan,
        name=target.name,
        signature=target.signature,
        max_order=target.max_order,
        known_constants=target.known_constants,
        target_schema=target.target_schema,
    )


# ---------------------------------------------------------------------------
# The seeded bad-query corpus
# ---------------------------------------------------------------------------

class TestSeededCorpus:
    def test_corpus_exists(self):
        assert len(collect_lam_files([CORPUS])) >= 5

    def test_every_expected_code_fires(self):
        for path in collect_lam_files([CORPUS]):
            target = load_lam_file(path)
            assert target.expect, f"{path} declares no expected codes"
            report = run_target(target)
            fired = set(report.codes())
            missing = target.expect - fired
            assert not missing, (
                f"{path}: expected {sorted(target.expect)}, "
                f"fired {sorted(fired)}"
            )

    def test_corpus_covers_at_least_five_distinct_codes(self):
        fired = set()
        for path in collect_lam_files([CORPUS]):
            fired.update(run_target(load_lam_file(path)).codes())
        # Drop the positive certificates; count real findings only.
        findings = fired - {"TLI006", "TLI010"}
        assert len(findings) >= 5, sorted(findings)

    def test_expected_codes_are_registered(self):
        for path in collect_lam_files([CORPUS]):
            for code in load_lam_file(path).expect:
                assert code in CODES


# ---------------------------------------------------------------------------
# Example queries and the operator library lint clean
# ---------------------------------------------------------------------------

class TestCleanCorpus:
    def test_examples_have_no_findings(self):
        paths = collect_lam_files([EXAMPLES])
        assert paths, "examples/terms is empty"
        for path in paths:
            report = run_target(load_lam_file(path))
            assert report.ok, report.render()
            assert not report.warnings(), report.render()
            assert report.order is not None
            assert report.cost is not None

    def test_operator_library_is_clean(self):
        targets = operator_library_targets()
        assert len(targets) >= 10
        for target in targets:
            report = run_target(target)
            assert report.ok, report.render()
            assert not report.warnings(), report.render()

    def test_signatured_operators_land_in_tli0(self):
        for target in operator_library_targets():
            if target.signature is None:
                continue
            report = run_target(target)
            assert report.fragment == "TLI=0", report.render()


# ---------------------------------------------------------------------------
# Term passes
# ---------------------------------------------------------------------------

class TestTermPasses:
    def test_free_variable_is_error(self):
        report = analyze_term(parse(r"\c. c x"), name="t")
        assert "TLI001" in report.codes()
        assert not report.ok

    def test_closed_term_no_tli001(self):
        report = analyze_term(SWAP, name="swap", signature=SIG22)
        assert "TLI001" not in report.codes()
        assert report.ok

    def test_unknown_constant_needs_known_set(self):
        term = parse(r"\u. \v. Eq o1 o2 u v")
        assert "TLI002" not in analyze_term(term, name="t").codes()
        report = analyze_term(term, name="t", known_constants={"o1"})
        assert "TLI002" in report.codes()
        # Deduplicated per constant name.
        assert len([d for d in report.diagnostics if d.code == "TLI002"]) == 1

    def test_shadow_in_open_subterm_warns(self):
        term = parse(r"\x. \y. x ((\x. y x) x)")
        assert "TLI003" in analyze_term(term, name="t").codes()

    def test_shadow_inside_closed_combinator_is_benign(self):
        # Inlined closed combinators reuse binder names freely (the
        # operator library does this everywhere).
        term = parse(r"\x. \y. x ((\x. \y. x y) y)")
        assert "TLI003" not in analyze_term(term, name="t").codes()

    def test_dead_accumulator_warns(self):
        term = parse(r"\R. \c. \n. R (\x. \T. c x n) n")
        report = analyze_term(
            term, name="t", signature=QueryArity((1,), 1)
        )
        assert "TLI004" in report.codes()
        assert report.ok  # warning, not error

    def test_live_accumulator_clean(self):
        term = parse(r"\R. \c. \n. R (\x. \T. c x T) n")
        report = analyze_term(
            term, name="t", signature=QueryArity((1,), 1)
        )
        assert "TLI004" not in report.codes()

    def test_ill_typed_is_error(self):
        report = analyze_term(parse(r"\x. x x"), name="t")
        assert "TLI005" in report.codes()
        assert not report.ok
        assert report.order is None

    def test_order_certificate_and_fragment(self):
        report = analyze_term(SWAP, name="swap", signature=SIG22)
        assert report.order == 3
        assert report.fragment == "TLI=0"
        assert "TLI006" in report.codes()

    def test_order_budget_enforced(self):
        over = analyze_term(SWAP, name="swap", signature=SIG22, max_order=2)
        assert "TLI007" in over.codes()
        assert not over.ok
        under = analyze_term(SWAP, name="swap", signature=SIG22, max_order=3)
        assert "TLI007" not in under.codes()

    def test_equality_on_abstraction_is_error(self):
        report = analyze_term(
            parse(r"\u. \v. Eq (\x. x) o1 u v"), name="t"
        )
        assert "TLI008" in report.codes()

    def test_equality_on_boolean_is_error(self):
        report = analyze_term(
            parse(r"\u. \v. Eq (Eq o1 o2 o1 o2) o1 u v"), name="t"
        )
        assert "TLI008" in report.codes()

    def test_wrong_shape_for_signature(self):
        # Result type o, not a relation type (Lemma 3.9 failure).
        report = analyze_term(
            parse(r"\R1. \R2. R1 (\x y T. x) o1"),
            name="t",
            signature=SIG22,
        )
        assert "TLI009" in report.codes()
        assert not report.ok


# ---------------------------------------------------------------------------
# Fixpoint passes
# ---------------------------------------------------------------------------

class TestFixpointPasses:
    def test_tc_is_clean(self):
        report = analyze_fixpoint(transitive_closure_query(), name="tc")
        assert report.ok
        assert report.order == 4
        assert report.fragment == "TLI=1"
        assert report.cost is not None
        assert report.cost.kind == "fixpoint"

    def test_arity_mismatch_is_tli012(self):
        query = FixpointQuery.of(Base("E"), 1, {"E": 2})
        report = analyze_fixpoint(query, name="bad")
        assert "TLI012" in report.codes()
        assert not report.ok

    def test_unknown_relation_is_tli012(self):
        query = FixpointQuery.of(Base("X"), 2, {"E": 2})
        report = analyze_fixpoint(query, name="bad")
        assert "TLI012" in report.codes()

    def test_stage_explosion_is_tli013(self):
        query = FixpointQuery.of(Base("T"), 3, {"T": 3})
        report = analyze_fixpoint(query, name="wide")
        assert "TLI013" in report.codes()
        assert report.ok  # warning only

    def test_non_monotone_step_is_tli014(self):
        step = Difference(Base("E"), Base("__FIX__"))
        query = FixpointQuery.of(step, 2, {"E": 2}, inflationary=False)
        report = analyze_fixpoint(query, name="osc")
        assert "TLI014" in report.codes()

    def test_inflationary_difference_not_tli014(self):
        step = Difference(Base("E"), Base("__FIX__"))
        query = FixpointQuery.of(step, 2, {"E": 2}, inflationary=True)
        report = analyze_fixpoint(query, name="infl")
        assert "TLI014" not in report.codes()

    def test_unused_input_is_tli015(self):
        tc = transitive_closure_query()
        query = FixpointQuery(
            step=tc.step,
            output_arity=tc.output_arity,
            input_schema=tc.input_schema + (("S", 2),),
            inflationary=tc.inflationary,
        )
        report = analyze_fixpoint(query, name="padded")
        messages = [
            d.message for d in report.diagnostics if d.code == "TLI015"
        ]
        assert messages and "'S'" in messages[0]

    def test_step_ignoring_fix_is_tli016(self):
        query = FixpointQuery.of(Base("E"), 2, {"E": 2})
        report = analyze_fixpoint(query, name="oneshot")
        assert "TLI016" in report.codes()
        assert report.ok  # info only

    def test_tc_step_reads_fix(self):
        report = analyze_fixpoint(transitive_closure_query(), name="tc")
        assert "TLI016" not in report.codes()


# ---------------------------------------------------------------------------
# Cost bounds: the static polynomial dominates observed NBE steps
# ---------------------------------------------------------------------------

BENCH_TERMS = [
    ("swap2", r"\R. \c. \n. R (\x. \y. \T. c y x T) n", (2,), 2),
    ("diag", r"\R. \c. \n. R (\x. \T. c x x T) n", (1,), 2),
    ("select", r"\R. \c. \n. R (\x. \y. \T. Eq x y (c x y T) T) n", (2,), 2),
    # The Theorem 5.1 benchmark suite (benchmarks/bench_theorem_5_1.py).
    ("identity", r"\R1. \R2. R1", (2, 2), 2),
    ("swap", r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n", (2, 2), 2),
    (
        "diagonal",
        r"\R1. \R2. \c. \n. R1 (\x y T. Eq x y (c x x T) T) n",
        (2, 2),
        2,
    ),
    (
        "first_tuple",
        r"\R1. \R2. \c. \n. c (R1 (\x y T. x) o1) (R1 (\x y T. y) o1) n",
        (2, 2),
        2,
    ),
]


def _bench_database(arities):
    relations = {}
    for index, arity in enumerate(arities):
        rows = [
            tuple(f"o{1 + (row + column + index) % 5}"
                  for column in range(arity))
            for row in range(4)
        ]
        relations[f"R{index + 1}"] = Relation.from_any_order(arity, rows)
    return Database.of(relations)


class TestCostBoundSoundness:
    @pytest.mark.parametrize("name,source,inputs,output", BENCH_TERMS)
    def test_term_bounds_dominate(self, name, source, inputs, output):
        term = parse(source)
        database = _bench_database(inputs)
        profile = term_cost_profile(
            term, input_count=len(inputs), output_arity=output
        )
        stats = DatabaseStats.of(database)
        encoded = list(encode_database(database))
        _, steps = nbe_normalize_counted(app(term, *encoded))
        assert steps <= profile.bound(stats), (
            f"{name}: observed {steps} > bound {profile.bound(stats)}"
        )

    def test_operator_bounds_dominate(self):
        database = _bench_database((2, 2))
        stats = DatabaseStats.of(database)
        encoded = list(encode_database(database))
        for target in operator_library_targets():
            signature = target.signature
            if signature is None or signature.inputs not in ((2,), (2, 2)):
                continue
            profile = term_cost_profile(
                target.plan,
                input_count=len(signature.inputs),
                output_arity=signature.output,
            )
            applied = app(
                target.plan, *encoded[: len(signature.inputs)]
            )
            _, steps = nbe_normalize_counted(applied)
            assert steps <= profile.bound(stats), (
                f"{target.name}: observed {steps} > "
                f"bound {profile.bound(stats)}"
            )

    def test_fixpoint_tower_bound_dominates(self):
        # The staged (Section 5.3) evaluator counts every NBE reduction it
        # performs; it does strictly less work than one-shot normalization
        # of the applied tower, which is what the Theorem 5.1-style
        # envelope bounds.
        from repro.eval.ptime import run_fixpoint_query

        database = Database.of(
            {"E": Relation.from_tuples(2, [("o1", "o2"), ("o2", "o3")])}
        )
        query = transitive_closure_query()
        report = analyze_fixpoint(query, name="tc")
        stats = DatabaseStats.of(database)
        run = run_fixpoint_query(query, database)
        assert run.nbe_steps > 0
        assert run.nbe_steps <= report.cost.bound(stats), (
            f"tc tower: observed {run.nbe_steps} > "
            f"bound {report.cost.bound(stats)}"
        )

    def test_random_database_bounds_dominate(self):
        database = random_database([2, 2], [8, 6], universe_size=6, seed=11)
        stats = DatabaseStats.of(database)
        encoded = list(encode_database(database))
        term = SWAP
        profile = term_cost_profile(term, input_count=2, output_arity=2)
        _, steps = nbe_normalize_counted(app(term, *encoded))
        assert steps <= profile.bound(stats)


class TestFuelBudget:
    def test_without_certificate_uses_default(self):
        assert fuel_budget(None, None, default=123) == 123

    def test_with_certificate_uses_bound(self):
        profile = term_cost_profile(SWAP, input_count=2, output_arity=2)
        stats = DatabaseStats(atoms=10, tuples=5, domain=4, relations=1)
        assert fuel_budget(profile, stats, default=1) == profile.bound(stats)

    def test_floor_applies(self):
        profile = term_cost_profile(
            parse(r"\c. \n. n"), input_count=0, output_arity=0
        )
        stats = DatabaseStats(atoms=0, tuples=0, domain=0, relations=0)
        assert fuel_budget(profile, stats, default=1, floor=9999) == 9999


# ---------------------------------------------------------------------------
# Orders on unresolved type variables (satellite: derivation_order safety)
# ---------------------------------------------------------------------------

class TestOrderWithTypeVars:
    def test_min_ground_order_treats_vars_as_base(self):
        a = TypeVar("a")
        assert min_ground_order(a) == 0
        assert min_ground_order(Arrow(a, a)) == 1
        assert min_ground_order(Arrow(Arrow(a, BaseO()), a)) == 2

    def test_derivation_order_of_polymorphic_identity(self):
        assert infer(parse(r"\x. x")).derivation_order() == 1

    def test_derivation_order_of_apply(self):
        # (a -> b) -> a -> b: minimal ground instance has order 2.
        assert infer(parse(r"\f. \x. f x")).derivation_order() == 2

    def test_analyzer_orders_unannotated_terms(self):
        report = analyze_term(parse(r"\f. \x. f x"), name="apply")
        assert report.order == 2
        assert report.fragment is None  # no signature, no fragment claim


# ---------------------------------------------------------------------------
# Corpus loader
# ---------------------------------------------------------------------------

class TestCorpusLoader:
    def test_directives_parsed(self, tmp_path):
        path = tmp_path / "q.lam"
        path.write_text(
            "# name: custom\n"
            "# inputs: 2, 2\n"
            "# output: 2\n"
            "# max-order: 3\n"
            "# constants: a b\n"
            "# expect: TLI002\n"
            r"\R. \S. \c. \n. R (\x. \y. \T. c y x T) n"
            "\n"
        )
        target = load_lam_file(path)
        assert target.name == "custom"
        assert target.signature == QueryArity((2, 2), 2)
        assert target.max_order == 3
        assert target.known_constants == {"a", "b"}
        assert target.expect == {"TLI002"}

    def test_inputs_without_output_rejected(self):
        with pytest.raises(CorpusError):
            load_lam_source("# inputs: 2\n\\x. x", name="q")

    def test_empty_file_rejected(self):
        with pytest.raises(CorpusError):
            load_lam_source("# name: nothing\n", name="q")

    def test_unparseable_term_rejected(self):
        with pytest.raises(CorpusError):
            load_lam_source("((", name="q")


# ---------------------------------------------------------------------------
# Reports and rendering
# ---------------------------------------------------------------------------

class TestReports:
    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_report_dict_shape(self):
        report = analyze_term(SWAP, name="swap", signature=SIG22)
        data = report.as_dict()
        assert data["ok"] is True
        assert data["order"] == 3
        assert data["fragment"] == "TLI=0"
        assert data["cost"]["kind"] == "term"
        codes = [d["code"] for d in data["diagnostics"]]
        assert "TLI006" in codes and "TLI010" in codes

    def test_batch_json_summary(self):
        reports = [
            analyze_term(SWAP, name="swap", signature=SIG22),
            analyze_term(parse(r"\x. x x"), name="bad"),
        ]
        payload = render_reports_json(reports)
        assert payload["summary"]["analyzed"] == 2
        assert payload["summary"]["failed"] == 1
        assert payload["summary"]["errors"] >= 1

    def test_docs_cover_every_code(self):
        docs = (REPO / "docs" / "analysis.md").read_text()
        for code in CODES:
            assert code in docs, f"{code} undocumented in docs/analysis.md"


# ---------------------------------------------------------------------------
# Shard-classification corpus fixtures (TLI017 / TLI018)
# ---------------------------------------------------------------------------

class TestShardCorpusFixtures:
    def _report_for(self, stem):
        path = CORPUS / f"{stem}.lam"
        assert path.exists(), path
        return run_target(load_lam_file(path))

    def test_broadcast_join_fires_tli017(self):
        report = self._report_for("broadcast_join")
        assert report.ok, report.render()
        assert "TLI017" in report.codes()
        assert "TLI018" not in report.codes()

    def test_sharded_self_join_fires_tli018(self):
        report = self._report_for("sharded_self_join")
        assert report.ok, report.render()
        assert "TLI018" in report.codes()
        assert "TLI017" not in report.codes()


# ---------------------------------------------------------------------------
# Abstract interpretation: facts, tightened bounds, soundness
# ---------------------------------------------------------------------------

class TestAbstractInterpretation:
    def test_demanded_occurrences_matches_expansion(self):
        from repro.analysis import demanded_occurrences
        from repro.lam.terms import expand_lets

        from repro.analysis.cost import _free_occurrences

        sources = [
            r"let f = R in f (f n)",
            r"let f = R S in let g = f in g (g (S n))",
            r"let dead = R R R in S",
            r"\x. let f = R x in f f",
        ]
        for source in sources:
            term = parse(source)
            expanded = expand_lets(term)
            for names in (("R",), ("S",), ("R", "S")):
                assert demanded_occurrences(term, names) == (
                    _free_occurrences(expanded, names)
                ), source

    def test_let_liveness_reports_dead_bindings(self):
        from repro.analysis import let_liveness

        term = parse(r"\R. let junk = R in let keep = R in keep")
        total, dead = let_liveness(term)
        assert total == 2
        assert dead == ("junk",)

    @pytest.mark.parametrize("name,source,inputs,output", BENCH_TERMS)
    def test_tightened_bounds_still_dominate(
        self, name, source, inputs, output
    ):
        from repro.analysis import tighten_term_profile

        term = parse(source)
        database = _bench_database(inputs)
        base = term_cost_profile(
            term, input_count=len(inputs), output_arity=output
        )
        tightened, facts = tighten_term_profile(
            term, base=base, input_count=len(inputs)
        )
        stats = DatabaseStats.of(database)
        encoded = list(encode_database(database))
        _, steps = nbe_normalize_counted(app(term, *encoded))
        if tightened is not None:
            assert steps <= tightened.bound(stats), (
                f"{name}: observed {steps} > tightened "
                f"{tightened.bound(stats)}"
            )
            assert tightened.bound(stats) <= base.bound(stats), name

    def test_geo_mean_tightening_beats_two_x(self):
        # The acceptance bar: across the benchmark corpus the tightened
        # bounds cut the geo-mean bound/observed ratio by >= 2x.
        import math

        from repro.analysis import tighten_term_profile

        improvements = []
        for name, source, inputs, output in BENCH_TERMS:
            term = parse(source)
            database = _bench_database(inputs)
            stats = DatabaseStats.of(database)
            base = term_cost_profile(
                term, input_count=len(inputs), output_arity=output
            )
            tightened, _ = tighten_term_profile(
                term, base=base, input_count=len(inputs)
            )
            effective = tightened if tightened is not None else base
            improvements.append(base.bound(stats) / effective.bound(stats))
        geo_mean = math.exp(
            sum(math.log(i) for i in improvements) / len(improvements)
        )
        assert geo_mean >= 2.0, improvements

    def test_walk_falls_back_on_input_under_loop_binder(self):
        from repro.analysis import abstract_term_facts

        # The loop binder f is applied to a subterm containing the input
        # R: f's runtime value could re-iterate R, so the walk must
        # refuse to tighten.
        term = parse(r"\R. \c. \n. R (\x. \f. f (R c n)) n")
        facts = abstract_term_facts(term, input_count=1)
        assert facts.fallback is not None

    def test_facts_report_scan_sites_and_cardinality(self):
        from repro.analysis import abstract_term_facts

        facts = abstract_term_facts(SWAP, input_count=2)
        assert facts.fallback is None
        assert facts.scan_degree == 1
        assert [site.input_name for site in facts.scan_sites] == ["R1"]
        stats = DatabaseStats(atoms=20, tuples=10, domain=5, relations=2)
        interval = facts.cardinality(stats)
        assert interval.lo == 0 and interval.hi >= 10

    def test_fixpoint_stage_cap_is_pointwise_tighter_and_sound(self):
        from repro.eval.ptime import run_fixpoint_query

        database = Database.of(
            {"E": Relation.from_tuples(2, [("o1", "o2"), ("o2", "o3")])}
        )
        query = transitive_closure_query()
        report = analyze_fixpoint(query, name="tc")
        assert report.tightened_cost is not None
        assert report.tightened_cost.stage_cap == "domain"
        stats = DatabaseStats.of(database)
        tightened = report.tightened_cost.bound(stats)
        assert tightened <= report.cost.bound(stats)
        run = run_fixpoint_query(query, database)
        assert run.nbe_steps <= tightened

    def test_expansion_guard_surfaces_tli022(self, monkeypatch):
        import repro.analysis.cost as cost_mod

        monkeypatch.setattr(cost_mod, "_EXPANSION_CAP", 4)
        term = parse(r"\R. \c. \n. let f = (\x. \y. \T. c x y T) in R f n")
        report = analyze_term(
            term, name="guarded", signature=QueryArity((2,), 2)
        )
        assert "TLI022" in report.codes()
        # The dataflow count matches what expansion would have found, so
        # the degree is unchanged from the unguarded run.
        unguarded = term_cost_profile(term, input_count=1, output_arity=2)
        assert report.cost.degree == unguarded.degree

    def test_analyzer_emits_tli020_and_tli021_for_swap(self):
        report = analyze_term(SWAP, name="swap", signature=SIG22)
        assert "TLI020" in report.codes()
        assert "TLI017" in report.codes()
        assert "TLI021" in report.codes()
        assert report.tightened_cost is not None
        assert report.tightened_cost.degree < report.cost.degree
        assert report.facts is not None
        assert report.facts["scan_degree"] == 1
