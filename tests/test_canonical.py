"""Tests for canonical forms (Lemma 5.4) and structure analysis
(Lemmas 5.5/5.6)."""

import pytest

from repro.db.generators import random_database
from repro.errors import CanonicalFormError
from repro.eval.canonical import CanonicalQuery, canonical_query
from repro.eval.driver import run_query
from repro.eval.structure import (
    ConsIR,
    EqIR,
    IterIR,
    OConstIR,
    OIterIR,
    OVarIR,
    TailVarIR,
    analyze_query,
)
from repro.lam.parser import parse
from repro.lam.terms import Abs, binder_prefix, spine, subterms
from repro.queries.language import QueryArity
from repro.queries.operators import intersection_term, union_term
from repro.queries.relalg_compile import build_ra_query
from repro.relalg.ast import Base


class TestCanonicalForm:
    def test_union_becomes_eta_long(self):
        # Union's body R c (S c n) has the non-expanded c; Lemma 5.4
        # eta-expands it into λx̄. λy. c x̄ y.
        canonical = canonical_query(union_term(2), QueryArity((2, 2), 2))
        binders, _ = binder_prefix(canonical.body)
        assert len(binders) == 2  # c and n

        # Every iterator in the canonical body takes a fully expanded
        # loop function.
        analysis = analyze_query(canonical)
        assert isinstance(analysis.body, IterIR)

    def test_canonical_body_annotated(self):
        canonical = canonical_query(
            intersection_term(1), QueryArity((1, 1), 1)
        )
        for node in subterms(canonical.body):
            if isinstance(node, Abs):
                assert node.annotation is not None

    def test_occurrences_are_split(self):
        # Intersection uses S once, R once; the identity query R ∩ R uses
        # R twice and must get two occurrence variables.
        from repro.lam.terms import app, lam, Var

        query = lam(
            "R", app(intersection_term(1), Var("R"), Var("R"))
        )
        canonical = canonical_query(query, QueryArity((1,), 1))
        assert len(canonical.occurrences) == 2
        assert set(canonical.occurrences.values()) == {0}

    def test_canonical_form_preserves_semantics(self, small_db=None):
        db = random_database([2, 2], [4, 3], universe_size=3, seed=23)
        expr = Base("R1").intersect(Base("R2")).project(1, 0)
        query = build_ra_query(expr, ["R1", "R2"], {"R1": 2, "R2": 2})
        canonical = canonical_query(query, QueryArity((2, 2), 2))
        # Rebuild a runnable query from the canonical body.
        from repro.lam.subst import substitute_many
        from repro.lam.terms import Var, lam

        body = substitute_many(
            canonical.body,
            {
                occ: Var(f"IN{i}")
                for occ, i in canonical.occurrences.items()
            },
        )
        rebuilt = lam(["IN0", "IN1"], body)
        direct = run_query(query, db, arity=2).relation
        via_canonical = run_query(rebuilt, db, arity=2).relation
        assert direct.same_set(via_canonical)

    def test_non_query_rejected(self):
        with pytest.raises(CanonicalFormError):
            canonical_query(parse(r"\R. R R"), QueryArity((2,), 2))

    def test_eta_reduced_query_accepted(self):
        # λR. R is the identity query without explicit c/n binders.
        canonical = canonical_query(parse(r"\R. R"), QueryArity((2,), 2))
        analysis = analyze_query(canonical)
        assert isinstance(analysis.body, IterIR)
        assert isinstance(analysis.body.body, ConsIR)


class TestStructureAnalysis:
    def analyze(self, source, arity):
        return analyze_query(
            canonical_query(parse(source), arity)
        )

    def test_lemma_5_6_cases_delta(self):
        analysis = self.analyze(
            r"\R. \c. \n. R (\x y T. Eq x y (c x y T) T) n",
            QueryArity((2,), 2),
        )
        iteration = analysis.body
        assert isinstance(iteration, IterIR)
        branch = iteration.body
        assert isinstance(branch, EqIR)
        assert isinstance(branch.then_branch, ConsIR)
        assert isinstance(branch.else_branch, TailVarIR)
        assert branch.else_branch.name == iteration.acc_var
        assert isinstance(iteration.init, TailVarIR)
        assert iteration.init.name == analysis.nil_var

    def test_lemma_5_6_cases_o(self):
        analysis = self.analyze(
            r"\R. \c. \n. c (R (\x y T. x) o9) o8 n",
            QueryArity((2,), 2),
        )
        cons = analysis.body
        assert isinstance(cons, ConsIR)
        first, second = cons.components
        assert isinstance(first, OIterIR)
        assert isinstance(first.body, OVarIR)
        assert isinstance(first.init, OConstIR)
        assert isinstance(second, OConstIR)

    def test_tuple_and_acc_vars_recorded(self):
        analysis = self.analyze(
            r"\R. \c. \n. R (\x y T. c y x T) n", QueryArity((2,), 2)
        )
        iteration = analysis.body
        assert len(iteration.tuple_vars) == 2
        assert iteration.acc_var not in iteration.tuple_vars

    def test_order_1_query_rejected(self):
        # A small TLI=1 query (iteration with an order-1 accumulator, the
        # Copy gadget's shape) violates the Lemma 5.6 classification for
        # order 0: the analyzer must reject it.
        term = parse(
            r"\R. \c. \n. R (\x y A. \m. c x y (A m)) (\m. m) n"
        )
        from repro.queries.language import is_tli_query_term

        assert is_tli_query_term(term, QueryArity((2,), 2), 1)
        assert not is_tli_query_term(term, QueryArity((2,), 2), 0)
        with pytest.raises(CanonicalFormError):
            analyze_query(canonical_query(term, QueryArity((2,), 2)))


class TestIsCanonical:
    """Executable Definition 5.3."""

    def cases(self):
        from repro.queries.operators import (
            difference_term,
            intersection_term,
            union_term,
        )

        return [
            (union_term(2), QueryArity((2, 2), 2)),
            (intersection_term(1), QueryArity((1, 1), 1)),
            (difference_term(2), QueryArity((2, 2), 2)),
            (parse(r"\R. R"), QueryArity((2,), 2)),
            (parse(r"\R. \c. \n. c o1 n"), QueryArity((2,), 1)),
        ]

    def test_canonical_query_postcondition(self):
        from repro.eval.canonical import is_canonical

        for term, arity in self.cases():
            canonical = canonical_query(term, arity)
            assert is_canonical(canonical), term.pretty()[:60]

    def test_rejects_tampered_bodies(self):
        from dataclasses import replace

        from repro.eval.canonical import is_canonical
        from repro.lam.terms import Abs, App, Var

        canonical = canonical_query(parse(r"\R. R"), QueryArity((2,), 2))
        assert is_canonical(canonical)
        # Strip the body's eta-long binders: no longer canonical.
        body = canonical.body
        assert isinstance(body, Abs)
        tampered = replace(canonical, body=body.body)
        assert not is_canonical(tampered)
        # Introduce a redex: not a normal form.
        redex = App(Abs("w", Var("w")), canonical.body)
        assert not is_canonical(replace(canonical, body=redex))
