"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(
        json.dumps({"E": [["o1", "o2"], ["o2", "o3"]]})
    )
    return str(path)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestNormalize:
    def test_nbe(self, capsys):
        code, out, _ = run_cli(capsys, "normalize", r"(\x. x) o1")
        assert code == 0 and out.strip() == "o1"

    def test_smallstep_with_steps(self, capsys):
        code, out, err = run_cli(
            capsys, "normalize", r"(\x. x) o1",
            "--engine", "normal", "--steps",
        )
        assert code == 0
        assert out.strip() == "o1"
        assert "steps: 1" in err

    def test_applicative(self, capsys):
        code, out, _ = run_cli(
            capsys, "normalize", "Eq o1 o1 a b", "--engine", "applicative"
        )
        assert code == 0 and out.strip() == "a"


class TestType:
    def test_tlc(self, capsys):
        code, out, _ = run_cli(capsys, "type", r"\x. Eq x x")
        assert code == 0
        assert "o -> g -> g -> g" in out

    def test_ml(self, capsys):
        code, out, _ = run_cli(
            capsys, "type", r"let f = \x. x in f f", "--ml"
        )
        assert code == 0 and "principal type" in out

    def test_untypable_reports_error(self, capsys):
        code, _, err = run_cli(capsys, "type", r"\x. x x")
        assert code == 1 and "error" in err


class TestRunAndTranslate:
    def test_run(self, capsys, db_file):
        code, out, _ = run_cli(
            capsys, "run", r"\E. \c. \n. E (\x y T. c y x T) n",
            "--db", db_file, "--arity", "2",
        )
        assert code == 0
        rows = {tuple(line.split("\t")) for line in out.strip().splitlines()}
        assert rows == {("o2", "o1"), ("o3", "o2")}

    def test_translate_and_evaluate(self, capsys, db_file):
        code, out, err = run_cli(
            capsys, "translate", r"\E. E",
            "--inputs", "2", "--output", "2", "--db", db_file,
        )
        assert code == 0
        assert "IN0" in out  # the formula
        assert "o1\to2" in out

    def test_recognize(self, capsys):
        code, out, _ = run_cli(
            capsys, "recognize", r"\E. E", "--inputs", "2", "--output", "2"
        )
        assert code == 0
        assert "TLI=0 query term" in out
        assert "MLI=0 query term" in out

    def test_recognize_rejects(self, capsys):
        code, out, _ = run_cli(
            capsys, "recognize", r"\E. E",
            "--inputs", "2", "--output", "3",
        )
        assert code == 0
        assert "not a TLI=" in out


class TestEncodeDecode:
    def test_encode(self, capsys, db_file):
        code, out, _ = run_cli(capsys, "encode", "--db", db_file)
        assert code == 0
        assert out.startswith("E = \\c. \\n. c o1 o2")

    def test_decode(self, capsys):
        code, out, _ = run_cli(
            capsys, "decode", r"\c. \n. c o1 (c o1 n)"
        )
        assert code == 0
        assert out.strip() == "o1"

    def test_decode_garbage(self, capsys):
        code, _, err = run_cli(capsys, "decode", "o1")
        assert code == 1 and "error" in err

    def test_term_from_file(self, capsys, tmp_path):
        path = tmp_path / "term.lam"
        path.write_text(r"\c. \n. c o5 n")
        code, out, _ = run_cli(capsys, "decode", f"@{path}")
        assert code == 0 and out.strip() == "o5"


class TestDatalogCommand:
    def test_baseline_engine(self, capsys, db_file, tmp_path):
        program = tmp_path / "tc.dl"
        program.write_text(
            "tc(X, Y) :- E(X, Y).\ntc(X, Y) :- E(X, Z), tc(Z, Y)."
        )
        code, out, _ = run_cli(
            capsys, "datalog", str(program), "--db", db_file
        )
        assert code == 0
        rows = {tuple(line.split("\t")) for line in out.strip().splitlines()}
        assert ("tc", "o1", "o3") in rows

    def test_lambda_engine_agrees(self, capsys, db_file, tmp_path):
        program = tmp_path / "tc.dl"
        program.write_text(
            "tc(X, Y) :- E(X, Y).\ntc(X, Y) :- E(X, Z), tc(Z, Y)."
        )
        _, baseline, _ = run_cli(
            capsys, "datalog", str(program), "--db", db_file
        )
        code, via_lambda, _ = run_cli(
            capsys, "datalog", str(program), "--db", db_file,
            "--engine", "lambda",
        )
        assert code == 0
        assert set(baseline.splitlines()) == set(via_lambda.splitlines())

    def test_missing_program_file(self, capsys, db_file):
        code, _, err = run_cli(
            capsys, "datalog", "/nope.dl", "--db", db_file
        )
        assert code == 1 and "error" in err


class TestFOCommand:
    def test_direct_and_lambda_agree(self, capsys, db_file):
        code, direct, _ = run_cli(
            capsys, "fo", "exists y. E(x, y)", "--vars", "x",
            "--db", db_file,
        )
        assert code == 0
        code, via_lambda, _ = run_cli(
            capsys, "fo", "exists y. E(x, y)", "--vars", "x",
            "--db", db_file, "--engine", "lambda",
        )
        assert code == 0
        assert set(direct.splitlines()) == set(via_lambda.splitlines())

    def test_parse_error_is_clean(self, capsys, db_file):
        code, _, err = run_cli(
            capsys, "fo", "E(x", "--vars", "x", "--db", db_file
        )
        assert code == 1 and "error" in err

    def test_free_var_not_in_vars(self, capsys, db_file):
        code, _, err = run_cli(
            capsys, "fo", "E(x, y)", "--vars", "x", "--db", db_file
        )
        assert code == 1 and "error" in err


SWAP_QUERY = r"swap=\R. \c. \n. R (\x y T. c y x T) n"


class TestCatalogCommand:
    def test_catalog_summary(self, capsys, db_file):
        code, out, _ = run_cli(
            capsys, "catalog", "--db", f"g={db_file}",
            "--query", SWAP_QUERY, "--fixpoint", "tc=tc:E",
            "--inputs", "2", "--output", "2",
        )
        assert code == 0
        assert "db g v1" in out
        assert "query swap kind=term engine=ra" in out
        assert "order=3" in out
        assert "query tc kind=fixpoint engine=fixpoint" in out

    def test_catalog_json(self, capsys, db_file):
        code, out, _ = run_cli(
            capsys, "catalog", "--db", f"g={db_file}",
            "--query", SWAP_QUERY, "--json",
        )
        assert code == 0
        summary = json.loads(out)
        assert summary["databases"][0]["name"] == "g"
        assert summary["queries"][0]["engine"] == "nbe"

    def test_bad_query_rejected_at_registration(self, capsys, db_file):
        code, _, err = run_cli(
            capsys, "catalog", "--db", f"g={db_file}",
            "--query", r"bad=\R. R (\x y T. x) o1",
            "--inputs", "2", "--output", "2",
        )
        assert code == 1 and "error" in err

    def test_malformed_name_value(self, capsys, db_file):
        code, _, err = run_cli(capsys, "catalog", "--db", "nodatabase")
        assert code == 1 and "NAME=" in err


class TestBatchCommand:
    @pytest.fixture
    def batch_file(self, tmp_path):
        path = tmp_path / "batch.json"
        path.write_text(json.dumps({
            "requests": [
                {"query": "tc", "tag": "closure"},
                {"query": "swap"},
                {"query": "tc"},
            ]
        }))
        return str(path)

    def test_batch_text_output(self, capsys, db_file, batch_file):
        code, out, err = run_cli(
            capsys, "batch", batch_file, "--db", f"g={db_file}",
            "--query", SWAP_QUERY, "--fixpoint", "tc=tc:E",
            "--inputs", "2", "--output", "2",
        )
        assert code == 0
        assert "closure" in out
        assert "cache=hit" in out  # the repeated tc request
        assert "o1\to3" in out     # a transitive edge
        assert "cache hits" in err

    def test_batch_json_stats(self, capsys, db_file, batch_file):
        code, out, _ = run_cli(
            capsys, "batch", batch_file, "--db", f"g={db_file}",
            "--query", SWAP_QUERY, "--fixpoint", "tc=tc:E",
            "--inputs", "2", "--output", "2",
            "--json", "--repeat", "2", "--workers", "2",
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["stats"]["requests"] == 6
        assert doc["stats"]["cache_hits"] >= 4
        assert doc["stats"]["statuses"] == {"ok": 6}
        assert len(doc["responses"]) == 6
        assert all(r["status"] == "ok" for r in doc["responses"])
        assert doc["service"]["cache"]["hits"] >= 4

    def test_inline_term_request(self, capsys, db_file, tmp_path):
        path = tmp_path / "inline.json"
        path.write_text(json.dumps([
            {"query": r"\R. \c. \n. R (\x y T. c x y T) n", "arity": 2},
        ]))
        code, out, _ = run_cli(
            capsys, "batch", str(path), "--db", f"g={db_file}",
        )
        assert code == 0
        assert "o1\to2" in out

    def test_failed_request_sets_exit_code(self, capsys, db_file, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"query": "tc", "db": "missing"}]))
        code, out, _ = run_cli(
            capsys, "batch", str(path), "--db", f"g={db_file}",
            "--fixpoint", "tc=tc:E",
        )
        assert code == 1
        assert "error" in out

    def test_missing_batch_file(self, capsys, db_file):
        code, _, err = run_cli(
            capsys, "batch", "/nope.json", "--db", f"g={db_file}"
        )
        assert code == 1 and "error" in err


class TestLintCommand:
    def test_operator_library_clean_strict(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "--operators", "--strict")
        assert code == 0
        assert "0 failing" in out

    def test_examples_clean_strict(self, capsys):
        code, out, _ = run_cli(
            capsys, "lint", "--strict", "examples/terms"
        )
        assert code == 0

    def test_seeded_corpus_expected_codes(self, capsys):
        code, out, _ = run_cli(
            capsys, "lint", "--strict", "tests/fixtures/lint_corpus"
        )
        assert code == 0, out

    def test_inline_query_failure_exits_nonzero(self, capsys):
        code, out, _ = run_cli(
            capsys, "lint", "--query", r"bad=\c. c x"
        )
        assert code == 1
        assert "TLI001" in out

    def test_strict_promotes_warnings(self, capsys, tmp_path):
        path = tmp_path / "dead.lam"
        path.write_text(
            "# inputs: 1\n"
            "# output: 1\n"
            r"\R. \c. \n. R (\x. \T. c x n) n"
            "\n"
        )
        lenient_code, _, _ = run_cli(capsys, "lint", str(path))
        strict_code, strict_out, _ = run_cli(
            capsys, "lint", "--strict", str(path)
        )
        assert lenient_code == 0
        assert strict_code == 1
        assert "TLI004" in strict_out

    def test_budget_flag(self, capsys):
        code, out, _ = run_cli(
            capsys, "lint",
            "--query", r"swap=\R. \c. \n. R (\x y T. c y x T) n",
            "--inputs", "2", "--output", "2", "--budget", "2",
        )
        assert code == 1
        assert "TLI007" in out

    def test_json_shape(self, capsys):
        code, out, _ = run_cli(
            capsys, "lint", "--json", "--strict", "tests/fixtures/lint_corpus"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["summary"]["analyzed"] >= 5
        assert payload["summary"]["strict"] is True
        assert payload["summary"]["exit_failures"] == 0
        assert all("diagnostics" in report for report in payload["reports"])

    def test_fixpoint_target(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "--fixpoint", "tc=tc")
        assert code == 0
        assert "TLI=1" in out or "order 4" in out

    def test_no_targets_errors(self, capsys):
        code, _, err = run_cli(capsys, "lint")
        assert code != 0


class TestExplainAndFlightCommands:
    def test_explain_json_report(self, capsys, db_file):
        code, out, _ = run_cli(
            capsys, "explain", "swap",
            "--db", f"g={db_file}",
            "--query", r"swap=\E. \c. \n. E (\x y T. c y x T) n",
            "--inputs", "2", "--output", "2",
        )
        assert code == 0
        report = json.loads(out)
        assert report["status"] == "ok"
        assert report["explain_requested"] is True
        assert report["static"]["order"] == 3
        assert report["static"]["cost"]
        assert report["observed"]["cache_hit"] is False
        assert "explain" in report["reasons"]
        assert any(s["name"] == "query" for s in report["spans"])

    def test_explain_sharded_has_worker_rows(self, capsys, db_file):
        code, out, _ = run_cli(
            capsys, "explain", "swap",
            "--db", f"g={db_file}",
            "--query", r"swap=\E. \c. \n. E (\x y T. c y x T) n",
            "--inputs", "2", "--output", "2",
            "--shards", "2",
        )
        assert code == 0
        report = json.loads(out)
        rows = report["observed"]["shards"]
        assert sorted(row["shard"] for row in rows) == [0, 1]
        names = [s["name"] for s in report["spans"]]
        assert names.count("worker.task") == 2

    def test_flight_dump_after_batch(self, capsys, db_file, tmp_path):
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps({"requests": [
            {"query": "swap", "db": "g"},
        ]}))
        code, out, _ = run_cli(
            capsys, "flight",
            "--db", f"g={db_file}",
            "--query", r"swap=\E. \c. \n. E (\x y T. c y x T) n",
            "--inputs", "2", "--output", "2",
            "--requests", str(batch),
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["stats"]["capacity"] > 0
        # A first-ever request lands in the slowest-N cohort.
        assert payload["records"]
        assert payload["records"][0]["trace_id"]

    def test_flight_empty_without_traffic(self, capsys, db_file):
        code, out, _ = run_cli(capsys, "flight", "--db", f"g={db_file}")
        assert code == 0
        payload = json.loads(out)
        assert payload["records"] == []

    def test_trace_shards_prints_worker_spans(self, capsys, db_file):
        code, out, _ = run_cli(
            capsys, "trace", "swap",
            "--db", f"g={db_file}",
            "--query", r"swap=\E. \c. \n. E (\x y T. c y x T) n",
            "--inputs", "2", "--output", "2",
            "--shards", "2", "--no-tuples",
        )
        assert code == 0
        assert "worker.task" in out
        assert "shard.evaluate" in out
