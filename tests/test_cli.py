"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(
        json.dumps({"E": [["o1", "o2"], ["o2", "o3"]]})
    )
    return str(path)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestNormalize:
    def test_nbe(self, capsys):
        code, out, _ = run_cli(capsys, "normalize", r"(\x. x) o1")
        assert code == 0 and out.strip() == "o1"

    def test_smallstep_with_steps(self, capsys):
        code, out, err = run_cli(
            capsys, "normalize", r"(\x. x) o1",
            "--engine", "normal", "--steps",
        )
        assert code == 0
        assert out.strip() == "o1"
        assert "steps: 1" in err

    def test_applicative(self, capsys):
        code, out, _ = run_cli(
            capsys, "normalize", "Eq o1 o1 a b", "--engine", "applicative"
        )
        assert code == 0 and out.strip() == "a"


class TestType:
    def test_tlc(self, capsys):
        code, out, _ = run_cli(capsys, "type", r"\x. Eq x x")
        assert code == 0
        assert "o -> g -> g -> g" in out

    def test_ml(self, capsys):
        code, out, _ = run_cli(
            capsys, "type", r"let f = \x. x in f f", "--ml"
        )
        assert code == 0 and "principal type" in out

    def test_untypable_reports_error(self, capsys):
        code, _, err = run_cli(capsys, "type", r"\x. x x")
        assert code == 1 and "error" in err


class TestRunAndTranslate:
    def test_run(self, capsys, db_file):
        code, out, _ = run_cli(
            capsys, "run", r"\E. \c. \n. E (\x y T. c y x T) n",
            "--db", db_file, "--arity", "2",
        )
        assert code == 0
        rows = {tuple(line.split("\t")) for line in out.strip().splitlines()}
        assert rows == {("o2", "o1"), ("o3", "o2")}

    def test_translate_and_evaluate(self, capsys, db_file):
        code, out, err = run_cli(
            capsys, "translate", r"\E. E",
            "--inputs", "2", "--output", "2", "--db", db_file,
        )
        assert code == 0
        assert "IN0" in out  # the formula
        assert "o1\to2" in out

    def test_recognize(self, capsys):
        code, out, _ = run_cli(
            capsys, "recognize", r"\E. E", "--inputs", "2", "--output", "2"
        )
        assert code == 0
        assert "TLI=0 query term" in out
        assert "MLI=0 query term" in out

    def test_recognize_rejects(self, capsys):
        code, out, _ = run_cli(
            capsys, "recognize", r"\E. E",
            "--inputs", "2", "--output", "3",
        )
        assert code == 0
        assert "not a TLI=" in out


class TestEncodeDecode:
    def test_encode(self, capsys, db_file):
        code, out, _ = run_cli(capsys, "encode", "--db", db_file)
        assert code == 0
        assert out.startswith("E = \\c. \\n. c o1 o2")

    def test_decode(self, capsys):
        code, out, _ = run_cli(
            capsys, "decode", r"\c. \n. c o1 (c o1 n)"
        )
        assert code == 0
        assert out.strip() == "o1"

    def test_decode_garbage(self, capsys):
        code, _, err = run_cli(capsys, "decode", "o1")
        assert code == 1 and "error" in err

    def test_term_from_file(self, capsys, tmp_path):
        path = tmp_path / "term.lam"
        path.write_text(r"\c. \n. c o5 n")
        code, out, _ = run_cli(capsys, "decode", f"@{path}")
        assert code == 0 and out.strip() == "o5"


class TestDatalogCommand:
    def test_baseline_engine(self, capsys, db_file, tmp_path):
        program = tmp_path / "tc.dl"
        program.write_text(
            "tc(X, Y) :- E(X, Y).\ntc(X, Y) :- E(X, Z), tc(Z, Y)."
        )
        code, out, _ = run_cli(
            capsys, "datalog", str(program), "--db", db_file
        )
        assert code == 0
        rows = {tuple(line.split("\t")) for line in out.strip().splitlines()}
        assert ("tc", "o1", "o3") in rows

    def test_lambda_engine_agrees(self, capsys, db_file, tmp_path):
        program = tmp_path / "tc.dl"
        program.write_text(
            "tc(X, Y) :- E(X, Y).\ntc(X, Y) :- E(X, Z), tc(Z, Y)."
        )
        _, baseline, _ = run_cli(
            capsys, "datalog", str(program), "--db", db_file
        )
        code, via_lambda, _ = run_cli(
            capsys, "datalog", str(program), "--db", db_file,
            "--engine", "lambda",
        )
        assert code == 0
        assert set(baseline.splitlines()) == set(via_lambda.splitlines())

    def test_missing_program_file(self, capsys, db_file):
        code, _, err = run_cli(
            capsys, "datalog", "/nope.dl", "--db", db_file
        )
        assert code == 1 and "error" in err


class TestFOCommand:
    def test_direct_and_lambda_agree(self, capsys, db_file):
        code, direct, _ = run_cli(
            capsys, "fo", "exists y. E(x, y)", "--vars", "x",
            "--db", db_file,
        )
        assert code == 0
        code, via_lambda, _ = run_cli(
            capsys, "fo", "exists y. E(x, y)", "--vars", "x",
            "--db", db_file, "--engine", "lambda",
        )
        assert code == 0
        assert set(direct.splitlines()) == set(via_lambda.splitlines())

    def test_parse_error_is_clean(self, capsys, db_file):
        code, _, err = run_cli(
            capsys, "fo", "E(x", "--vars", "x", "--db", db_file
        )
        assert code == 1 and "error" in err

    def test_free_var_not_in_vars(self, capsys, db_file):
        code, _, err = run_cli(
            capsys, "fo", "E(x, y)", "--vars", "x", "--db", db_file
        )
        assert code == 1 and "error" in err
