"""Tests for the Section 2.3 combinators (booleans, numerals, lists)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lam.alpha import alpha_equal
from repro.lam.combinators import (
    add_term,
    and_term,
    boolean_list,
    boolean_term,
    boolean_value,
    church_numeral,
    compose_term,
    false_term,
    identity_term,
    length_term,
    list_iterator,
    mul_term,
    not_term,
    numeral_value,
    or_term,
    parity_term,
    succ_term,
    true_term,
    xor_term,
    zero_term,
)
from repro.lam.nbe import nbe_normalize
from repro.lam.reduce import normalize
from repro.lam.terms import Const, app, term_size
from repro.types.check import check_church
from repro.types.infer import principal_type
from repro.types.types import bool_type


def run(term):
    return normalize(term).term


class TestBooleans:
    def test_true_false_distinct(self):
        assert not alpha_equal(true_term(), false_term())

    def test_boolean_value_decoding(self):
        assert boolean_value(true_term()) is True
        assert boolean_value(false_term()) is False

    def test_boolean_value_rejects_garbage(self):
        with pytest.raises(ValueError):
            boolean_value(Const("o1"))

    @given(st.booleans(), st.booleans())
    def test_xor_truth_table(self, a, b):
        result = run(app(xor_term(), boolean_term(a), boolean_term(b)))
        assert boolean_value(result) == (a != b)

    @given(st.booleans(), st.booleans())
    def test_and_or_truth_tables(self, a, b):
        assert boolean_value(
            run(app(and_term(), boolean_term(a), boolean_term(b)))
        ) == (a and b)
        assert boolean_value(
            run(app(or_term(), boolean_term(a), boolean_term(b)))
        ) == (a or b)

    @given(st.booleans())
    def test_not(self, a):
        assert boolean_value(run(app(not_term(), boolean_term(a)))) == (
            not a
        )

    def test_booleans_are_church_typed(self):
        assert check_church(true_term()) == bool_type()
        assert check_church(xor_term()) is not None


class TestNumerals:
    @given(st.integers(min_value=0, max_value=20))
    def test_roundtrip(self, n):
        assert numeral_value(church_numeral(n)) == n

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            church_numeral(-1)

    @given(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
    )
    def test_addition(self, m, n):
        term = app(add_term(), church_numeral(m), church_numeral(n))
        assert numeral_value(run(term)) == m + n

    @given(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
    )
    def test_multiplication(self, m, n):
        term = app(mul_term(), church_numeral(m), church_numeral(n))
        assert numeral_value(run(term)) == m * n

    def test_succ_and_zero(self):
        assert numeral_value(run(app(succ_term(), zero_term()))) == 1

    def test_numeral_value_rejects_non_numerals(self):
        with pytest.raises(ValueError):
            numeral_value(true_term())


class TestListIteration:
    @given(st.lists(st.booleans(), max_size=10))
    def test_parity(self, values):
        term = app(parity_term(), boolean_list(values))
        expected = (sum(values) % 2) == 1
        assert boolean_value(run(term)) == expected

    @given(st.lists(st.booleans(), max_size=10))
    def test_length(self, values):
        term = app(length_term(), boolean_list(values))
        assert numeral_value(run(term)) == len(values)

    def test_parity_program_size_is_constant(self):
        # "The size of the program computing parity is constant, because
        # the iterative machinery is taken from the data" (Section 2.3).
        assert term_size(parity_term()) == term_size(parity_term())
        short = term_size(app(parity_term(), boolean_list([True])))
        long = term_size(app(parity_term(), boolean_list([True] * 50)))
        assert long - short == 49 * (
            term_size(boolean_list([True] * 2))
            - term_size(boolean_list([True]))
        )

    def test_list_iterator_unfolds_as_fold(self):
        # (Parity L) reduces to Xor e1 (Xor e2 ... (Xor ek False)).
        term = app(parity_term(), boolean_list([True, False]))
        partial = normalize(term).term
        expected = normalize(
            app(
                xor_term(),
                true_term(),
                app(xor_term(), false_term(), false_term()),
            )
        ).term
        assert alpha_equal(partial, expected)

    def test_empty_list(self):
        assert boolean_value(run(app(parity_term(), boolean_list([])))) is False
        assert numeral_value(run(app(length_term(), list_iterator([])))) == 0


class TestMiscCombinators:
    def test_identity(self):
        assert alpha_equal(
            run(app(identity_term(), Const("o3"))), Const("o3")
        )

    def test_compose(self):
        term = app(
            compose_term(),
            succ_term(),
            succ_term(),
            church_numeral(1),
        )
        assert numeral_value(run(term)) == 3

    def test_principal_types_exist(self):
        for combinator in (
            true_term(),
            xor_term(),
            parity_term(),
            length_term(),
            add_term(),
            mul_term(),
        ):
            assert principal_type(combinator) is not None

    def test_nbe_agrees_on_combinator_workloads(self):
        for term in (
            app(add_term(), church_numeral(3), church_numeral(4)),
            app(parity_term(), boolean_list([True, True, False])),
            app(length_term(), boolean_list([False] * 6)),
        ):
            assert alpha_equal(
                nbe_normalize(term), normalize(term).term
            )


class TestNumeralArithmetic:
    def test_pred(self):
        from repro.lam.combinators import pred_term

        for n in (0, 1, 5):
            result = run(app(pred_term(), church_numeral(n)))
            assert numeral_value(result) == max(n - 1, 0)

    def test_monus(self):
        from repro.lam.combinators import monus_term

        for m, n in ((5, 2), (2, 5), (3, 3)):
            result = run(
                app(monus_term(), church_numeral(m), church_numeral(n))
            )
            assert numeral_value(result) == max(m - n, 0)

    def test_is_zero(self):
        from repro.lam.combinators import is_zero_term

        assert boolean_value(run(app(is_zero_term(), church_numeral(0))))
        assert not boolean_value(
            run(app(is_zero_term(), church_numeral(3)))
        )

    def test_pairs(self):
        from repro.lam.combinators import fst_term, pair_term, snd_term

        paired = app(pair_term(), Const("o1"), Const("o2"))
        assert run(app(fst_term(), paired)) == Const("o1")
        assert run(app(snd_term(), paired)) == Const("o2")

    def test_nat_eq_computes_but_is_untypable(self):
        # The docstring's point: symmetric numeral equality works under
        # reduction but is not simply typable (nor ML-typable with
        # lambda-bound arguments) — the reason the paper adds Eq.
        from repro.lam.combinators import nat_eq_term
        from repro.types.infer import typable
        from repro.types.ml import ml_typable

        for m, n in ((2, 2), (2, 3), (0, 0), (0, 1)):
            result = run(
                app(nat_eq_term(), church_numeral(m), church_numeral(n))
            )
            assert boolean_value(result) == (m == n)
        assert not typable(nat_eq_term())
        assert not ml_typable(nat_eq_term())
