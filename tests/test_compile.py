"""The plan compiler (`repro.compile`): differential and fallback tests.

The compiled set-backed engine must be *invisible* semantically: for any
certified plan, the relation it computes equals the one NBE reduction
computes — and equals what the sharded path merges, for any shard count.
The differential tests here generate random relational-algebra plans,
push them through the Theorem 4.1 compiler into TLI=0 terms, and compare

* the compiled executor (``compile_term_plan(...).execute``),
* NBE reduction (``run_once(engine="nbe")``), and
* the service with ``shards=k`` for k in {1, 2, 3}

as tuple sets.  Fixpoint specs get the same treatment against the
Theorem 5.2 stage evaluator.  The fallback taxonomy and the runtime
degradation path (``"ra"`` falling back to NBE, with metrics) are
covered explicitly.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compile import (
    CompileFallback,
    compile_decision,
    compile_term_plan,
    run_fixpoint_query_compiled,
)
from repro.datalog.compile import datalog_to_fixpoint
from repro.db.generators import random_graph_relation
from repro.db.relations import Database, Relation
from repro.errors import EvaluationError
from repro.eval.ptime import run_fixpoint_query
from repro.lam.parser import parse
from repro.queries.language import QueryArity
from repro.queries.relalg_compile import build_ra_query
from repro.relalg.ast import (
    Base,
    ColumnEqualsColumn,
    ColumnEqualsConst,
    CondAnd,
    CondNot,
    CondOr,
    Difference,
    Intersection,
    Product,
    Project,
    RAExpr,
    Select,
    Union,
    adom,
)
from repro.service import QueryRequest, QueryService

from tests.test_fixpoint_random import random_programs

SCHEMA = {"R": 2, "S": 2}
INPUT_NAMES = ("R", "S")
CONSTANTS = ("o1", "o2", "o3", "o4")

SWAP = r"\R. \c. \n. R (\x y T. c y x T) n"


def make_database(seed: int) -> Database:
    r = random_graph_relation(4, 0.4, seed=seed)
    s = random_graph_relation(4, 0.4, seed=seed + 1000)
    return Database.of(
        {"R": r if len(r) else Relation(2, (("o1", "o2"),)), "S": s}
    )


# -- random plan generator ---------------------------------------------------


@st.composite
def random_conditions(draw, arity: int):
    kind = draw(st.integers(min_value=0, max_value=4))
    if kind == 0:
        return ColumnEqualsColumn(
            draw(st.integers(0, arity - 1)), draw(st.integers(0, arity - 1))
        )
    if kind == 1:
        return ColumnEqualsConst(
            draw(st.integers(0, arity - 1)), draw(st.sampled_from(CONSTANTS))
        )
    if kind == 2:
        return CondAnd(
            draw(random_conditions(arity)), draw(random_conditions(arity))
        )
    if kind == 3:
        return CondOr(
            draw(random_conditions(arity)), draw(random_conditions(arity))
        )
    return CondNot(draw(random_conditions(arity)))


@st.composite
def random_plans(draw, depth: int = 0):
    """A random RAExpr over R/2, S/2; returns ``(expr, arity)``."""
    if depth >= 2 or draw(st.integers(0, 2)) == 0:
        if draw(st.integers(0, 5)) == 0:
            return adom(), 1
        return Base(draw(st.sampled_from(INPUT_NAMES))), 2
    op = draw(st.integers(0, 5))
    left, left_arity = draw(random_plans(depth=depth + 1))
    if op == 0:
        columns = tuple(
            draw(st.integers(0, left_arity - 1))
            for _ in range(draw(st.integers(1, 2)))
        )
        return Project(left, columns), len(columns)
    if op == 1:
        return Select(left, draw(random_conditions(left_arity))), left_arity
    right, right_arity = draw(random_plans(depth=depth + 1))
    if op == 2:
        return Product(left, right), left_arity + right_arity
    if left_arity != right_arity:
        # Set ops need equal arities; project the wider side down.
        if left_arity > right_arity:
            left = Project(left, tuple(range(right_arity)))
            left_arity = right_arity
        else:
            right = Project(right, tuple(range(left_arity)))
    combine = {3: Union, 4: Intersection, 5: Difference}[op]
    return combine(left, right), left_arity


def compile_inputs(expr: RAExpr, arity: int):
    term = build_ra_query(expr, INPUT_NAMES, SCHEMA)
    return term, QueryArity((2, 2), arity)


# -- differential: compiled vs NBE vs sharded --------------------------------


@pytest.fixture(scope="module")
def shard_service():
    service = QueryService(shard_workers=3)
    service.catalog.register_database("db", make_database(7))
    yield service
    service.close()


@given(random_plans(), st.integers(min_value=0, max_value=50))
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_compiled_matches_nbe_on_random_plans(plan, seed):
    from repro.service.runtime import run_once

    expr, arity = plan
    term, signature = compile_inputs(expr, arity)
    database = make_database(seed)
    decoded, _ = run_once(term, database, arity=arity, engine="nbe")
    try:
        compiled = compile_term_plan(term, signature.inputs, arity)
    except CompileFallback:
        # Random plans should essentially always lower — the Theorem 4.1
        # compiler emits exactly the liftable grammar — but a fallback
        # must never be wrong, only slow, so nothing to compare here.
        return
    run = compiled.execute(database)
    assert run.relation.same_set(decoded.relation), str(expr)
    # The executor also preserves the *raw* emission order of reduction.
    assert run.decoded.raw_tuples == decoded.raw_tuples, str(expr)


@given(
    random_plans(),
    st.integers(min_value=0, max_value=20),
    st.sampled_from([1, 2, 3]),
)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
def test_sharded_ra_matches_nbe(shard_service, plan, seed, shards):
    from repro.service.runtime import run_once

    expr, arity = plan
    term, signature = compile_inputs(expr, arity)
    shard_service.catalog.register_query("q", term, signature=signature)
    database = shard_service.catalog.get_database("db").database
    baseline, _ = run_once(term, database, arity=arity, engine="nbe")
    response = shard_service.execute(
        QueryRequest(query="q", database="db", shards=shards)
    )
    assert response.ok, response.error
    assert response.relation.same_set(baseline.relation), str(expr)


@given(random_programs(), st.integers(min_value=0, max_value=100))
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_compiled_fixpoint_matches_nbe_fixpoint(program, seed):
    graph = random_graph_relation(4, 0.35, seed=seed)
    vertices = Relation.unary(
        sorted({value for row in graph.tuples for value in row}) or ["o1"]
    )
    db = Database.of({"e": graph, "v": vertices})
    query = datalog_to_fixpoint(program)
    nbe = run_fixpoint_query(query, db)
    compiled = run_fixpoint_query_compiled(query, db)
    assert compiled.relation.same_set(nbe.relation), str(program)
    assert compiled.converged_at == nbe.converged_at
    assert compiled.stage_sizes == nbe.stage_sizes


# -- fallback taxonomy -------------------------------------------------------


class TestFallbacks:
    def test_constructor_arity_mismatch_falls_back(self):
        term = parse(SWAP)
        with pytest.raises(CompileFallback) as exc:
            compile_term_plan(term, (2,), 3)
        assert exc.value.reason == "constructor-arity"

    def test_missing_input_binders_fall_back(self):
        term = parse(r"\n. n")
        with pytest.raises(CompileFallback) as exc:
            compile_term_plan(term, (2, 2), 2)
        assert exc.value.reason == "missing-input-binders"

    def test_decision_never_raises(self):
        decision = compile_decision(parse(SWAP), (2,), 3)
        assert not decision.compiled
        assert decision.status == "fallback"
        assert decision.reason == "constructor-arity"
        payload = decision.as_dict()
        assert payload["status"] == "fallback"
        assert "constructor-arity" in payload["summary"]

    def test_ra_engine_requires_database_and_arity(self):
        from repro.service.engines import evaluate_term_query

        with pytest.raises(EvaluationError):
            evaluate_term_query(parse(SWAP), (), engine="ra")

    def test_fallback_decisions_are_memoized(self):
        term = parse(r"\R. \c. \n. R (\x y T. c x y T) n")
        first = compile_decision(term, (2,), 3)
        second = compile_decision(term, (2,), 3)
        assert first.reason == second.reason == "constructor-arity"


# -- service integration -----------------------------------------------------


class TestServiceIntegration:
    def make_service(self):
        service = QueryService()
        service.catalog.register_database("db", make_database(3))
        return service

    def test_registration_auto_selects_ra_and_reports_tli028(self):
        service = self.make_service()
        entry = service.catalog.register_query(
            "swap", parse(SWAP), signature=QueryArity((2,), 2)
        )
        assert entry.engine == "ra"
        assert entry.compiled is not None and entry.compiled.compiled
        assert "TLI028" in entry.report.codes()
        plans = service.registry.get("repro_compile_plans_total")
        assert plans.value(status="compiled", kind="term") == 1

    def test_ra_result_matches_nbe_and_counts_compiled_path(self):
        service = self.make_service()
        service.catalog.register_query(
            "swap", parse(SWAP), signature=QueryArity((2,), 2)
        )
        db2 = Database.of(
            {"R": service.catalog.get_database("db").database["R"]}
        )
        ra = service.execute(QueryRequest(query="swap", database=db2))
        nbe = service.execute(
            QueryRequest(query="swap", database=db2, engine="nbe")
        )
        assert ra.ok and nbe.ok
        assert ra.engine == "ra" and nbe.engine == "nbe"
        assert ra.relation.same_set(nbe.relation)
        # Compiled operations are bounded by reduction steps, so the
        # certified envelope holds a fortiori.
        assert ra.steps <= nbe.steps
        requests = service.registry.get("repro_compile_requests_total")
        assert requests.value(path="compiled") == 1
        service.close()

    def test_inline_term_with_ra_engine_falls_back_to_nbe(self):
        service = self.make_service()
        db = Database.of(
            {"R": service.catalog.get_database("db").database["R"]}
        )
        # Inline terms carry no certified output arity, so "ra" cannot
        # run; the runtime degrades to NBE and counts the degradation.
        response = service.execute(
            QueryRequest(query=parse(SWAP), database=db, engine="ra")
        )
        assert response.ok
        assert response.engine == "nbe"
        fallbacks = service.registry.get(
            "repro_compile_runtime_fallbacks_total"
        )
        assert fallbacks.value() == 1
        requests = service.registry.get("repro_compile_requests_total")
        assert requests.value(path="fallback") == 1
        service.close()

    def test_explain_carries_compile_decision(self):
        service = self.make_service()
        service.catalog.register_query(
            "swap", parse(SWAP), signature=QueryArity((2,), 2)
        )
        db = Database.of(
            {"R": service.catalog.get_database("db").database["R"]}
        )
        response = service.execute(
            QueryRequest(query="swap", database=db, explain=True)
        )
        compile_section = response.explain["static"]["compile"]
        assert compile_section["status"] == "compiled"
        assert compile_section["kind"] == "term"
        assert "scan" in compile_section["summary"]
        assert response.explain["observed"]["engine"] == "ra"
        service.close()

    def test_fixpoint_ra_engine_runs_set_based(self):
        from repro.queries.fixpoint import transitive_closure_query

        service = QueryService()
        edges = random_graph_relation(5, 0.3, seed=11)
        service.catalog.register_database(
            "g", Database.of({"E": edges})
        )
        query = transitive_closure_query("E")
        service.catalog.register_query("tc", query)
        entry = service.catalog.get_query("tc")
        # Fixpoint default stays the stage evaluator; "ra" is opt-in.
        assert entry.engine == "fixpoint"
        assert entry.compiled is not None and entry.compiled.compiled
        baseline = service.execute(QueryRequest(query="tc", database="g"))
        compiled = service.execute(
            QueryRequest(query="tc", database="g", engine="ra")
        )
        assert baseline.ok and compiled.ok
        assert compiled.engine == "ra"
        assert compiled.relation.same_set(baseline.relation)
        assert compiled.stages == baseline.stages
        assert compiled.steps < baseline.steps
        service.close()
