"""Tests for the Datalog(-not) baseline engine and its fixpoint compiler."""

import pytest

from repro.datalog.ast import Fact, Literal, Program, RConst, RVar, Rule
from repro.datalog.compile import datalog_to_fixpoint
from repro.datalog.engine import EvaluationStats, evaluate_program
from repro.datalog.stratify import dependency_edges, stratify
from repro.db.generators import chain_graph_relation, random_graph_relation
from repro.db.relations import Database, Relation
from repro.errors import (
    EvaluationError,
    QueryTermError,
    SchemaError,
    StratificationError,
)
from repro.eval.ptime import run_fixpoint_query
from tests.conftest import transitive_closure

V = RVar
C = RConst


def lit(predicate, *terms, positive=True):
    return Literal(predicate, tuple(terms), positive)


def tc_program():
    return Program.of(
        [
            Rule(lit("tc", V("x"), V("y")), (lit("E", V("x"), V("y")),)),
            Rule(
                lit("tc", V("x"), V("y")),
                (lit("E", V("x"), V("z")), lit("tc", V("z"), V("y"))),
            ),
        ],
        {"E": 2},
    )


class TestSafety:
    def test_unsafe_head_variable(self):
        with pytest.raises(SchemaError):
            Rule(lit("p", V("x"), V("y")), (lit("E", V("x"), V("x")),))

    def test_unsafe_negated_variable(self):
        with pytest.raises(SchemaError):
            Rule(
                lit("p", V("x")),
                (
                    lit("E", V("x"), V("x")),
                    lit("E", V("y"), V("y"), positive=False),
                ),
            )

    def test_negative_head_rejected(self):
        with pytest.raises(SchemaError):
            Rule(lit("p", V("x"), positive=False), (lit("E", V("x"), V("x")),))

    def test_arity_consistency(self):
        with pytest.raises(SchemaError):
            Program.of(
                [
                    Rule(lit("p", V("x")), (lit("E", V("x"), V("x")),)),
                    Rule(
                        lit("p", V("x"), V("y")),
                        (lit("E", V("x"), V("y")),),
                    ),
                ],
                {"E": 2},
            )

    def test_head_cannot_be_edb(self):
        with pytest.raises(SchemaError):
            Program.of(
                [Rule(lit("E", V("x"), V("x")), (lit("E", V("x"), V("x")),))],
                {"E": 2},
            ).idb_schema()

    def test_unknown_body_predicate(self):
        with pytest.raises(SchemaError):
            Program.of(
                [Rule(lit("p", V("x")), (lit("Q", V("x")),))], {"E": 2}
            )


class TestStratification:
    def test_positive_program_single_stratum(self):
        assert stratify(tc_program()) == [["tc"]]

    def test_negation_pushes_to_later_stratum(self):
        program = Program.of(
            [
                Rule(lit("p", V("x")), (lit("N", V("x")),)),
                Rule(
                    lit("q", V("x")),
                    (lit("N", V("x")), lit("p", V("x"), positive=False)),
                ),
            ],
            {"N": 1},
        )
        assert stratify(program) == [["p"], ["q"]]

    def test_negation_through_recursion_rejected(self):
        program = Program.of(
            [
                Rule(
                    lit("p", V("x")),
                    (lit("N", V("x")), lit("q", V("x"), positive=False)),
                ),
                Rule(
                    lit("q", V("x")),
                    (lit("N", V("x")), lit("p", V("x"), positive=False)),
                ),
            ],
            {"N": 1},
        )
        with pytest.raises(StratificationError):
            stratify(program)

    def test_dependency_edges(self):
        edges = dependency_edges(tc_program())
        assert ("tc", "tc", False) in edges


class TestEngine:
    def test_tc_against_reference(self):
        graph = random_graph_relation(6, 0.3, seed=13)
        db = Database.of({"E": graph})
        result = evaluate_program(tc_program(), db)["tc"]
        assert result.as_set() == transitive_closure(graph)

    def test_naive_and_seminaive_agree(self):
        graph = random_graph_relation(6, 0.3, seed=14)
        db = Database.of({"E": graph})
        naive = evaluate_program(tc_program(), db, strategy="naive")
        seminaive = evaluate_program(
            tc_program(), db, strategy="seminaive"
        )
        assert naive["tc"].same_set(seminaive["tc"])

    def test_seminaive_fires_fewer_rules(self):
        graph = chain_graph_relation(8)
        db = Database.of({"E": graph})
        naive_stats = EvaluationStats()
        evaluate_program(
            tc_program(), db, strategy="naive", stats=naive_stats
        )
        seminaive_stats = EvaluationStats()
        evaluate_program(
            tc_program(), db, strategy="seminaive", stats=seminaive_stats
        )
        assert seminaive_stats.rule_firings < naive_stats.rule_firings

    def test_inflationary_agrees_on_positive_programs(self):
        graph = random_graph_relation(5, 0.4, seed=15)
        db = Database.of({"E": graph})
        stratified = evaluate_program(tc_program(), db)
        inflationary = evaluate_program(
            tc_program(), db, semantics="inflationary"
        )
        assert stratified["tc"].same_set(inflationary["tc"])

    def test_stratified_negation(self):
        # non_edge(x, y) over the vertex set.
        program = Program.of(
            [
                Rule(
                    lit("ne", V("x"), V("y")),
                    (
                        lit("Vx", V("x")),
                        lit("Vx", V("y")),
                        lit("E", V("x"), V("y"), positive=False),
                    ),
                ),
            ],
            {"E": 2, "Vx": 1},
        )
        graph = chain_graph_relation(4)
        vertices = Relation.unary(sorted({a for t in graph.tuples for a in t}))
        db = Database.of({"E": graph, "Vx": vertices})
        result = evaluate_program(program, db)["ne"]
        expected = {
            (a, b)
            for (a,) in vertices
            for (b,) in vertices
            if (a, b) not in graph.as_set()
        }
        assert result.as_set() == expected

    def test_missing_edb_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_program(tc_program(), Database.of({}))

    def test_edb_arity_mismatch_rejected(self):
        db = Database.of({"E": Relation.empty(3)})
        with pytest.raises(EvaluationError):
            evaluate_program(tc_program(), db)

    def test_constants_in_rules(self):
        program = Program.of(
            [
                Rule(
                    lit("from1", V("y")),
                    (lit("E", C("o1"), V("y")),),
                )
            ],
            {"E": 2},
        )
        db = Database.of({"E": chain_graph_relation(3)})
        result = evaluate_program(program, db)["from1"]
        assert result.as_set() == {("o2",)}


class TestFixpointCompilation:
    def test_single_idb_required(self):
        program = Program.of(
            [
                Rule(lit("p", V("x")), (lit("N", V("x")),)),
                Rule(lit("q", V("x")), (lit("p", V("x")),)),
            ],
            {"N": 1},
        )
        with pytest.raises(QueryTermError):
            datalog_to_fixpoint(program)

    def test_tc_compilation_agrees(self):
        graph = random_graph_relation(6, 0.25, seed=16)
        db = Database.of({"E": graph})
        expected = evaluate_program(tc_program(), db)["tc"]
        run = run_fixpoint_query(datalog_to_fixpoint(tc_program()), db)
        assert run.relation.same_set(expected)

    def test_negated_edb_in_rule(self):
        program = Program.of(
            [
                Rule(
                    lit("ne", V("x"), V("y")),
                    (
                        lit("Vx", V("x")),
                        lit("Vx", V("y")),
                        lit("E", V("x"), V("y"), positive=False),
                    ),
                ),
            ],
            {"E": 2, "Vx": 1},
        )
        graph = chain_graph_relation(4)
        vertices = Relation.unary(
            sorted({a for t in graph.tuples for a in t})
        )
        db = Database.of({"E": graph, "Vx": vertices})
        expected = evaluate_program(program, db)["ne"]
        run = run_fixpoint_query(datalog_to_fixpoint(program), db)
        assert run.relation.same_set(expected)

    def test_ground_fact_rules(self):
        program = Program.of(
            [
                Rule(lit("p", C("o1"), C("o2")), ()),
                Rule(lit("p", V("y"), V("x")), (lit("p", V("x"), V("y")),)),
            ],
            {"E": 2},
        )
        db = Database.of({"E": chain_graph_relation(3)})
        expected = evaluate_program(program, db)["p"]
        run = run_fixpoint_query(datalog_to_fixpoint(program), db)
        assert run.relation.same_set(expected)
        assert run.relation.as_set() == {("o1", "o2"), ("o2", "o1")}

    def test_non_ground_bodyless_rule_rejected(self):
        with pytest.raises(SchemaError):
            datalog_to_fixpoint(
                Program.of(
                    [Rule(lit("p", C("o1"), C("o1")), ()),
                     Rule(lit("p", V("x"), V("x")), ())],
                    {"E": 2},
                )
            )


class TestMultiIDB:
    def _even_odd_program(self):
        # even(x) <- S(x);  odd(y) <- even(x), E(x, y);
        # even(y) <- odd(x), E(x, y) — mutually recursive IDBs.
        return Program.of(
            [
                Rule(lit("even", V("x")), (lit("S", V("x")),)),
                Rule(
                    lit("odd", V("y")),
                    (lit("even", V("x")), lit("E", V("x"), V("y"))),
                ),
                Rule(
                    lit("even", V("y")),
                    (lit("odd", V("x")), lit("E", V("x"), V("y"))),
                ),
            ],
            {"S": 1, "E": 2},
        )

    def test_tagging_reduction_agrees_with_engine(self):
        from repro.datalog.compile import run_multi_idb_via_fixpoint

        program = self._even_odd_program()
        graph = chain_graph_relation(6)
        db = Database.of(
            {"S": Relation.unary(["o1"]), "E": graph}
        )
        baseline = evaluate_program(
            program, db, semantics="inflationary"
        )
        derived = run_multi_idb_via_fixpoint(program, db)
        for name in ("even", "odd"):
            assert derived[name].same_set(baseline[name]), name

    def test_even_odd_semantics(self):
        from repro.datalog.compile import run_multi_idb_via_fixpoint

        program = self._even_odd_program()
        graph = chain_graph_relation(5)
        db = Database.of({"S": Relation.unary(["o1"]), "E": graph})
        derived = run_multi_idb_via_fixpoint(program, db)
        assert derived["even"].as_set() == {("o1",), ("o3",), ("o5",)}
        assert derived["odd"].as_set() == {("o2",), ("o4",)}

    def test_explicit_tags(self):
        from repro.datalog.compile import run_multi_idb_via_fixpoint

        program = self._even_odd_program()
        db = Database.of(
            {"S": Relation.unary(["o1"]), "E": chain_graph_relation(4)}
        )
        derived = run_multi_idb_via_fixpoint(
            program, db, tags={"even": "o1", "odd": "o2"}, pad="o3"
        )
        assert ("o1",) in derived["even"]

    def test_tags_must_be_in_domain(self):
        from repro.datalog.compile import run_multi_idb_via_fixpoint

        program = self._even_odd_program()
        db = Database.of(
            {"S": Relation.unary(["o1"]), "E": chain_graph_relation(3)}
        )
        with pytest.raises(SchemaError):
            run_multi_idb_via_fixpoint(
                program, db, tags={"even": "zz1", "odd": "zz2"}, pad="zz3"
            )

    def test_domain_too_small_for_auto_tags(self):
        from repro.datalog.compile import run_multi_idb_via_fixpoint

        program = self._even_odd_program()
        db = Database.of(
            {"S": Relation.unary(["o1"]), "E": Relation.empty(2)}
        )
        with pytest.raises(SchemaError):
            run_multi_idb_via_fixpoint(program, db)

    def test_distinct_tags_required(self):
        from repro.datalog.compile import multi_idb_program

        program = self._even_odd_program()
        with pytest.raises(SchemaError):
            multi_idb_program(
                program, {"even": "o1", "odd": "o1"}, "o2"
            )
