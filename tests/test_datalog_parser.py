"""Tests for the Datalog text syntax."""

import pytest

from repro.datalog.ast import Literal, RConst, RVar, Rule
from repro.datalog.engine import evaluate_program
from repro.datalog.parser import parse_program
from repro.db.generators import random_graph_relation
from repro.db.relations import Database, Relation
from repro.errors import ParseError, SchemaError
from tests.conftest import transitive_closure


class TestParsing:
    def test_tc_program(self):
        program = parse_program(
            """
            % transitive closure
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            """
        )
        assert len(program.rules) == 2
        assert program.edb() == {"e": 2}
        assert program.idb_schema() == {"tc": 2}

    def test_variables_are_uppercase(self):
        program = parse_program("p(X, bob) :- e(X, bob).")
        rule = program.rules[0]
        assert rule.head.terms == (RVar("X"), RConst("bob"))

    def test_quoted_constants(self):
        program = parse_program("p(X) :- e(X, 'Weird Name').")
        assert program.rules[0].body[0].terms[1] == RConst("Weird Name")

    def test_numeric_constants(self):
        program = parse_program("p(X) :- e(X, 42).")
        assert program.rules[0].body[0].terms[1] == RConst("42")

    def test_negation(self):
        program = parse_program(
            "p(X) :- v(X), not e(X, X)."
        )
        literals = program.rules[0].body
        assert literals[0].positive and not literals[1].positive

    def test_predicate_named_not_requires_care(self):
        # An atom whose predicate is literally "not" still parses.
        program = parse_program("p(X) :- not(X).")
        assert program.rules[0].body[0].predicate == "not"
        assert program.rules[0].body[0].positive

    def test_facts(self):
        program = parse_program(
            "p(a, b).\np(Y, X) :- p(X, Y).", edb={"e": 2}
        )
        assert program.rules[0].body == ()

    def test_explicit_edb_schema(self):
        program = parse_program("p(X) :- e(X, X).", edb={"e": 2, "v": 1})
        assert program.edb() == {"e": 2, "v": 1}

    def test_comments_and_whitespace(self):
        program = parse_program(
            "% nothing\n  p(X)\n  :- e(X, X)  . % trailing"
        )
        assert len(program.rules) == 1

    @pytest.mark.parametrize(
        "source",
        [
            "p(X)",              # missing dot
            "p(X) :- .",         # empty body after :-
            "p(X) :- e(X,).",    # trailing comma
            "p(X? :- e(X, X).",  # bad character
            ":- e(X, X).",       # missing head
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(ParseError):
            parse_program(source)

    def test_unsafe_rule_rejected(self):
        with pytest.raises(SchemaError):
            parse_program("p(X, Y) :- e(X, X).")

    def test_inconsistent_edb_arity_rejected(self):
        with pytest.raises((ParseError, SchemaError)):
            parse_program("p(X) :- e(X, X).\nq(X) :- e(X, X, X).")


class TestParsedProgramsRun:
    def test_tc_end_to_end(self):
        program = parse_program(
            "tc(X, Y) :- e(X, Y).\ntc(X, Y) :- e(X, Z), tc(Z, Y)."
        )
        graph = random_graph_relation(6, 0.3, seed=20)
        db = Database.of({"e": graph})
        result = evaluate_program(program, db)["tc"]
        assert result.as_set() == transitive_closure(graph)

    def test_parsed_program_through_lambda_pipeline(self):
        from repro.datalog.compile import datalog_to_fixpoint
        from repro.eval.ptime import run_fixpoint_query

        program = parse_program(
            "tc(X, Y) :- e(X, Y).\ntc(X, Y) :- e(X, Z), tc(Z, Y)."
        )
        graph = random_graph_relation(5, 0.3, seed=21)
        db = Database.of({"e": graph})
        run = run_fixpoint_query(datalog_to_fixpoint(program), db)
        assert run.relation.as_set() == transitive_closure(graph)
