"""Tests for relations, databases, and the Definition 3.1 / Lemma 3.2
encode-decode machinery."""

import pytest
from hypothesis import given

from repro.db.decode import decode_relation
from repro.db.domain import active_domain, active_domain_relation
from repro.db.encode import encode_constant_list, encode_relation
from repro.db.generators import (
    chain_graph_relation,
    constant_universe,
    cycle_graph_relation,
    random_database,
    random_relation,
)
from repro.db.relations import Database, Relation
from repro.errors import DecodeError, EncodingError, SchemaError
from repro.lam.alpha import alpha_equal
from repro.lam.parser import parse
from repro.lam.terms import Abs, Const, Var, app, lam
from repro.types.infer import principal_type
from repro.types.order import order
from repro.types.types import relation_type
from repro.types.unify import unifiable
from tests.conftest import relations


class TestRelation:
    def test_arity_checked(self):
        with pytest.raises(SchemaError):
            Relation(2, (("o1",),))

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            Relation(1, (("o1",), ("o1",)))

    def test_order_is_significant(self):
        left = Relation.from_tuples(1, [("o1",), ("o2",)])
        right = Relation.from_tuples(1, [("o2",), ("o1",)])
        assert left != right
        assert left.same_set(right)

    def test_deduplicated_keeps_first(self):
        rel = Relation.deduplicated(
            1, [("o2",), ("o1",), ("o2",)]
        )
        assert rel.tuples == (("o2",), ("o1",))

    def test_precedes(self):
        rel = Relation.from_tuples(1, [("o3",), ("o1",)])
        assert rel.precedes(("o3",), ("o1",))
        assert not rel.precedes(("o1",), ("o3",))

    def test_position_of_missing_tuple(self):
        rel = Relation.from_tuples(1, [("o1",)])
        with pytest.raises(ValueError):
            rel.position(("o9",))

    def test_constants_in_first_appearance_order(self):
        rel = Relation.from_tuples(2, [("o3", "o1"), ("o1", "o2")])
        assert rel.constants() == ["o3", "o1", "o2"]

    def test_membership(self):
        rel = Relation.from_tuples(2, [("o1", "o2")])
        assert ("o1", "o2") in rel
        assert ("o2", "o1") not in rel


class TestDatabase:
    def test_lookup(self):
        db = Database.of({"R": Relation.empty(2)})
        assert db["R"].arity == 2
        with pytest.raises(KeyError):
            db["S"]

    def test_active_domain_order(self):
        db = Database.of(
            {
                "R": Relation.from_tuples(1, [("o3",)]),
                "S": Relation.from_tuples(2, [("o1", "o3")]),
            }
        )
        assert db.active_domain() == ["o3", "o1"]

    def test_with_relation_replaces_and_appends(self):
        db = Database.of({"R": Relation.empty(1)})
        db2 = db.with_relation("R", Relation.unary(["o1"]))
        assert len(db2["R"]) == 1
        db3 = db.with_relation("S", Relation.empty(2))
        assert "S" in db3 and "S" not in db


class TestEncoding:
    def test_definition_3_1_shape(self):
        rel = Relation.from_tuples(2, [("o1", "o2"), ("o3", "o4")])
        term = encode_relation(rel)
        expected = parse(r"\c. \n. c o1 o2 (c o3 o4 n)")
        assert alpha_equal(term, expected)

    def test_empty_relation(self):
        assert alpha_equal(
            encode_relation(Relation.empty(3)), parse(r"\c. \n. n")
        )

    def test_cons_nil_names_must_differ(self):
        with pytest.raises(EncodingError):
            encode_relation(
                Relation.empty(1), cons_var="c", nil_var="c"
            )

    def test_principal_type_with_two_tuples(self):
        # "If r contains at least two tuples, the principal type of r̄ is
        # o^k" (Section 3.1).
        rel = Relation.from_tuples(2, [("o1", "o2"), ("o3", "o4")])
        inferred = principal_type(encode_relation(rel))
        from repro.types.types import TypeVar

        assert unifiable(inferred, relation_type(2, TypeVar("?d")))
        assert order(inferred) == 0 or True  # inferred has free vars
        # Grounded, the order is 2 regardless of arity.
        from repro.types.order import ground

        assert order(ground(inferred)) == 2

    def test_single_tuple_type_is_more_general(self):
        # With one tuple the o^k type is only an instance of the principal
        # type (Section 3.1).
        rel = Relation.from_tuples(1, [("o1",)])
        inferred = principal_type(encode_relation(rel))
        assert unifiable(inferred, relation_type(1))

    def test_annotated_encoding_types(self):
        from repro.types.check import check_church

        rel = Relation.from_tuples(2, [("o1", "o2"), ("o2", "o1")])
        term = encode_relation(rel, annotate=True)
        assert check_church(term) == relation_type(2)

    def test_constant_list(self):
        term = encode_constant_list(["o1", "o2"])
        assert alpha_equal(term, parse(r"\c. \n. c o1 (c o2 n)"))


class TestDecoding:
    @given(relations())
    def test_roundtrip(self, rel):
        decoded = decode_relation(encode_relation(rel), rel.arity)
        assert decoded.relation == rel
        assert not decoded.had_duplicates

    def test_duplicates_reported(self):
        term = parse(r"\c. \n. c o1 (c o1 n)")
        decoded = decode_relation(term)
        assert decoded.had_duplicates
        assert decoded.relation.tuples == (("o1",),)
        assert decoded.raw_tuples == (("o1",), ("o1",))

    def test_eta_variant_single_tuple(self):
        # Remark 3.3: λc. c o1 o2 is a valid single-tuple encoding.
        decoded = decode_relation(parse(r"\c. c o1 o2"))
        assert decoded.eta_variant
        assert decoded.relation.tuples == (("o1", "o2"),)

    def test_empty_decodes_with_declared_arity(self):
        decoded = decode_relation(parse(r"\c. \n. n"), 3)
        assert decoded.relation.arity == 3
        assert len(decoded.relation) == 0

    @pytest.mark.parametrize(
        "source",
        [
            "o1",                      # not an abstraction
            r"\c. \n. c o1 (d o2 n)",  # foreign head
            r"\c. \n. c x n",          # non-constant component
            r"\c. \n. c o1 (c o1 o2 n)",  # mixed arities
            r"\c. \n. Eq o1 o2 n n",   # Eq inside
            r"\c. \n. c o1",           # missing tail
        ],
    )
    def test_rejects_non_encodings(self, source):
        with pytest.raises(DecodeError):
            decode_relation(parse(source))

    def test_lemma_3_2_on_query_outputs(self):
        # Any normal form of relation type decodes (Lemma 3.2): exercise
        # through an actual reduction.
        from repro.lam.nbe import nbe_normalize

        rel = Relation.from_tuples(1, [("o1",), ("o2",)])
        doubled = app(
            parse(r"\R. \c. \n. R c (R c n)"), encode_relation(rel)
        )
        decoded = decode_relation(nbe_normalize(doubled), 1)
        assert decoded.had_duplicates
        assert decoded.relation.same_set(rel)


class TestGenerators:
    def test_random_relation_size(self):
        rel = random_relation(2, 5, seed=1)
        assert len(rel) == 5 and rel.arity == 2

    def test_random_relation_capped_by_space(self):
        rel = random_relation(1, 100, universe=["o1", "o2"], seed=1)
        assert len(rel) == 2

    def test_determinism(self):
        assert random_relation(2, 5, seed=3) == random_relation(
            2, 5, seed=3
        )

    def test_chain_and_cycle(self):
        chain = chain_graph_relation(4)
        assert len(chain) == 3
        cycle = cycle_graph_relation(4)
        assert len(cycle) == 4

    def test_random_database_schema(self):
        db = random_database([1, 2, 3], [2, 3, 4], seed=0)
        assert db.arities == [1, 2, 3]
        assert db.names == ["R1", "R2", "R3"]

    def test_active_domain_relation(self):
        db = random_database([2], [4], seed=5)
        adom = active_domain_relation(db)
        assert adom.arity == 1
        assert set(v for (v,) in adom.tuples) == set(
            active_domain(db)
        )
