"""Tests for structural digests and hash-consing (repro.lam.terms)."""

from repro.lam.parser import parse
from repro.lam.terms import (
    Abs,
    App,
    Const,
    EqConst,
    Let,
    Var,
    app,
    digest,
    intern_term,
    lam,
    let,
    term_size,
)


class TestDigest:
    def test_equal_terms_equal_digest(self):
        a = parse(r"\x. \y. Eq x y (c x y n) n")
        b = parse(r"\x. \y. Eq x y (c x y n) n")
        assert a is not b
        assert digest(a) == digest(b)

    def test_alpha_variants_share_digest(self):
        a = parse(r"\x. \y. x")
        b = parse(r"\u. \v. u")
        assert digest(a) == digest(b)

    def test_alpha_invariance_with_lets(self):
        a = let("x", Const("o1"), app(Var("c"), Var("x")))
        b = let("z", Const("o1"), app(Var("c"), Var("z")))
        assert digest(a) == digest(b)

    def test_let_binds_body_not_bound(self):
        # In ``let x = x in x`` the bound occurrence is *free*; renaming
        # the binder must not conflate it with the body occurrence.
        shadow = Let("x", Var("x"), Var("x"))
        renamed = Let("y", Var("x"), Var("y"))
        different = Let("y", Var("y"), Var("y"))
        assert digest(shadow) == digest(renamed)
        assert digest(shadow) != digest(different)

    def test_free_variables_distinguish(self):
        assert digest(Var("x")) != digest(Var("y"))
        assert digest(Abs("x", Var("x"))) != digest(Abs("x", Var("y")))

    def test_structure_distinguishes(self):
        assert digest(app(Var("f"), Var("x"))) != digest(
            app(Var("x"), Var("f"))
        )
        assert digest(Const("o1")) != digest(Var("o1"))
        assert digest(EqConst()) != digest(Const("Eq"))

    def test_annotations_ignored(self):
        from repro.types.types import O

        assert digest(Abs("x", Var("x"), O)) == digest(Abs("x", Var("x")))

    def test_memoized_per_object(self):
        term = parse(r"\x. \y. Eq x y (c x y n) n")
        assert digest(term) == digest(term)

    def test_shadowing_binders(self):
        a = Abs("x", Abs("x", Var("x")))  # inner binder wins
        b = Abs("y", Abs("x", Var("x")))
        c = Abs("x", Abs("y", Var("x")))
        assert digest(a) == digest(b)
        assert digest(a) != digest(c)

    def test_deep_term_no_recursion_error(self):
        # Encoded relations nest one App per tuple; digest must not hit the
        # recursion limit on serving-sized encodings.
        term = Var("n")
        for i in range(50_000):
            term = app(Var("c"), Const(f"o{i % 7}"), term)
        assert len(digest(term)) == 64


class TestInterning:
    def test_interned_terms_are_shared(self):
        a = parse(r"\x. \y. Eq x y (c x y n) n")
        b = parse(r"\x. \y. Eq x y (c x y n) n")
        assert intern_term(a) is intern_term(b)

    def test_interning_preserves_structure(self):
        source = r"let g = \x. Eq x o1 in g o2 a b"
        term = parse(source)
        interned = intern_term(term)
        assert interned == term
        assert term_size(interned) == term_size(term)

    def test_shared_subterms_collapse(self):
        shared = app(Var("f"), Const("o1"))
        term = app(lam(["a", "b"], Var("a")), shared,
                   app(Var("f"), Const("o1")))
        interned = intern_term(term)
        assert interned.fn.arg is interned.arg

    def test_alpha_variants_not_conflated(self):
        # Interning is *structural*: alpha-variants stay distinct objects
        # (digest, not interning, is the alpha-invariant notion).
        a = intern_term(Abs("x", Var("x")))
        b = intern_term(Abs("y", Var("y")))
        assert a is not b
