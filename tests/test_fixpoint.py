"""Tests for the Theorem 4.2 machinery: ListToFunc, FuncToList, Copy,
Crank, and whole fixpoint queries."""

import pytest

from repro.db.decode import decode_relation
from repro.db.encode import encode_relation
from repro.db.generators import chain_graph_relation, random_relation
from repro.db.relations import Database, Relation
from repro.lam.alpha import alpha_equal
from repro.lam.combinators import boolean_value, church_numeral, numeral_value
from repro.lam.nbe import nbe_normalize
from repro.lam.reduce import normalize
from repro.lam.terms import Const, Var, app, lam
from repro.queries.fixpoint import (
    FIX_NAME,
    FixpointQuery,
    build_fixpoint_query,
    copy_gadget_term,
    crank_term,
    empty_characteristic_term,
    fix,
    func_to_list_term,
    list_to_func_term,
    transitive_closure_query,
)
from repro.queries.language import QueryArity
from repro.relalg.ast import Base, Union


class TestListToFunc:
    def test_membership_semantics(self):
        rel = Relation.from_tuples(2, [("o1", "o2"), ("o2", "o1")])
        converter = list_to_func_term(2)
        for row, expected in ((("o1", "o2"), True), (("o1", "o1"), False)):
            term = app(
                converter,
                encode_relation(rel),
                *[Const(v) for v in row],
            )
            assert boolean_value(normalize(term).term) is expected


class TestFuncToList:
    def test_enumerates_domain_in_order(self):
        domain = encode_relation(Relation.unary(["o1", "o2", "o3"]))
        accept_all = lam(["x", "u", "v"], Var("u"))
        term = app(func_to_list_term(1, domain), accept_all)
        decoded = decode_relation(nbe_normalize(term), 1)
        assert decoded.relation.tuples == (("o1",), ("o2",), ("o3",))

    def test_filters_by_characteristic_function(self):
        domain = encode_relation(Relation.unary(["o1", "o2"]))
        # Accept only o2.
        accept = lam(
            ["x", "u", "v"],
            app(
                __import__("repro.lam.terms", fromlist=["EqConst"]).EqConst(),
                Var("x"),
                Const("o2"),
                Var("u"),
                Var("v"),
            ),
        )
        term = app(func_to_list_term(1, domain), accept)
        decoded = decode_relation(nbe_normalize(term), 1)
        assert decoded.relation.tuples == (("o2",),)

    def test_binary_enumeration(self):
        domain = encode_relation(Relation.unary(["o1", "o2"]))
        accept_all = lam(["x", "y", "u", "v"], Var("u"))
        term = app(func_to_list_term(2, domain), accept_all)
        decoded = decode_relation(nbe_normalize(term), 2)
        assert decoded.relation.tuples == (
            ("o1", "o1"),
            ("o1", "o2"),
            ("o2", "o1"),
            ("o2", "o2"),
        )

    def test_nullary(self):
        accept_all = lam(["u", "v"], Var("u"))
        term = app(
            func_to_list_term(0, encode_relation(Relation.unary(["o1"]))),
            accept_all,
        )
        decoded = decode_relation(nbe_normalize(term), 0)
        assert len(decoded.relation) == 1

    def test_composition_round_trips_membership(self):
        rel = random_relation(1, 3, seed=8)
        domain = encode_relation(Relation.unary(rel.constants()))
        term = app(
            func_to_list_term(1, domain),
            app(list_to_func_term(1), encode_relation(rel)),
        )
        decoded = decode_relation(nbe_normalize(term), 1)
        assert decoded.relation.same_set(rel)


class TestCopyGadget:
    @pytest.mark.parametrize("pad", [0, 1, 2, 3])
    def test_copy_is_identity_on_encodings(self, pad):
        rel = random_relation(2, 4, seed=9)
        term = app(copy_gadget_term(2, pad), encode_relation(rel))
        assert alpha_equal(
            nbe_normalize(term), encode_relation(rel)
        )

    def test_copy_of_empty(self):
        term = app(
            copy_gadget_term(1, 2), encode_relation(Relation.empty(1))
        )
        decoded = decode_relation(nbe_normalize(term), 1)
        assert len(decoded.relation) == 0

    def test_copy_launders_the_accumulator_type(self):
        # R itself is used at accumulator Phi while (Copy R) has o^k_g.
        from repro.types.infer import infer
        from repro.types.order import ground, order

        result = infer(copy_gadget_term(2, 2))
        input_type = ground(result.type.left)
        # R's accumulator inside Copy: o -> o -> g -> g -> g (order 1).
        assert order(input_type) == 3  # iterator over an order-1 acc


class TestCrank:
    def test_applies_domain_power_times(self):
        domain = encode_relation(Relation.unary(["o1", "o2", "o3"]))
        crank = crank_term(2, domain)
        # Count applications with a Church numeral successor.
        from repro.lam.combinators import succ_term, zero_term

        term = app(crank, succ_term(), zero_term())
        assert numeral_value(nbe_normalize(term)) == 9

    def test_nullary_crank_applies_once(self):
        crank = crank_term(0, encode_relation(Relation.empty(1)))
        from repro.lam.combinators import succ_term, zero_term

        term = app(crank, succ_term(), zero_term())
        assert numeral_value(nbe_normalize(term)) == 1


class TestWholeFixpointTerm:
    @pytest.mark.parametrize("style", ["tli", "mli"])
    def test_tc_by_direct_reduction(self, style):
        # Whole-term reduction on a tiny instance (the PTIME evaluator is
        # exercised in test_ptime_eval.py).
        term = build_fixpoint_query(transitive_closure_query("E"), style)
        db = Database.of(
            {"E": Relation.from_tuples(2, [("o1", "o2")])}
        )
        from repro.db.encode import encode_database

        nf = nbe_normalize(
            app(term, *encode_database(db)), max_depth=2_000_000
        )
        decoded = decode_relation(nf, 2)
        assert decoded.relation.as_set() == {("o1", "o2")}

    def test_non_inflationary_step(self):
        # A monotone step without the inflationary wrapper.
        query = FixpointQuery.of(
            Union(Base("E"), fix()), 2, {"E": 2}, inflationary=False
        )
        from repro.eval.ptime import run_fixpoint_query

        db = Database.of({"E": chain_graph_relation(3)})
        run = run_fixpoint_query(query, db)
        assert run.relation.same_set(db["E"])

    def test_style_validation(self):
        from repro.errors import QueryTermError

        with pytest.raises(QueryTermError):
            build_fixpoint_query(
                transitive_closure_query("E"), style="nonsense"
            )

    def test_empty_characteristic(self):
        term = app(
            empty_characteristic_term(2),
            Const("o1"),
            Const("o2"),
        )
        assert boolean_value(nbe_normalize(term)) is False


class TestPrebuiltQueries:
    def test_reachability_query(self):
        from repro.eval.ptime import run_fixpoint_query
        from repro.queries.fixpoint import reachability_query

        graph = chain_graph_relation(5)
        db = Database.of(
            {"S": Relation.unary(["o2"]), "E": graph}
        )
        run = run_fixpoint_query(reachability_query(), db)
        assert run.relation.as_set() == {
            ("o2",), ("o3",), ("o4",), ("o5",)
        }

    def test_same_generation_query(self):
        from repro.eval.ptime import run_fixpoint_query
        from repro.queries.fixpoint import same_generation_query

        up = Relation.from_tuples(2, [("o1", "o3"), ("o2", "o3")])
        flat = Relation.from_tuples(2, [("o3", "o3")])
        down = Relation.from_tuples(2, [("o3", "o1"), ("o3", "o2")])
        db = Database.of({"flat": flat, "up": up, "down": down})
        run = run_fixpoint_query(same_generation_query(), db)
        assert {("o1", "o2"), ("o2", "o1")} <= run.relation.as_set()

    def test_prebuilt_queries_are_order_4_terms(self):
        from repro.queries.fixpoint import (
            reachability_query,
            same_generation_query,
        )
        from repro.queries.language import is_mli_query_term

        reach = build_fixpoint_query(reachability_query(), "mli")
        assert is_mli_query_term(reach, QueryArity((1, 2), 1), 1)
        sg = build_fixpoint_query(same_generation_query(), "mli")
        assert is_mli_query_term(sg, QueryArity((2, 2, 2), 2), 1)
