"""Property test: random single-IDB Datalog programs through both engines.

Generates random safe programs over a binary EDB ``e`` and unary EDB ``v``
with one recursive IDB ``p``, and checks that the Theorem 5.2 evaluator of
the compiled TLI=1 term computes the same relation as the bottom-up
Datalog engine under inflationary semantics — across random databases.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog.ast import Literal, Program, RVar, Rule
from repro.datalog.compile import datalog_to_fixpoint
from repro.datalog.engine import evaluate_program
from repro.db.generators import random_graph_relation
from repro.db.relations import Database, Relation
from repro.errors import SchemaError
from repro.eval.ptime import run_fixpoint_query

IDB_ARITY = 2
VARS = ["X", "Y", "Z"]


@st.composite
def random_programs(draw) -> Program:
    """1-3 safe rules for ``p/2`` over ``e/2``, ``v/1``, and ``p`` itself."""
    rules = []
    rule_count = draw(st.integers(min_value=1, max_value=3))
    for _ in range(rule_count):
        body = []
        literal_count = draw(st.integers(min_value=1, max_value=3))
        for _ in range(literal_count):
            predicate = draw(st.sampled_from(["e", "p", "v"]))
            arity = 1 if predicate == "v" else 2
            terms = tuple(
                RVar(draw(st.sampled_from(VARS))) for _ in range(arity)
            )
            positive = predicate != "p" and draw(st.booleans())
            # Negation only on EDBs (keeps the inflationary comparison
            # deterministic and the rule obviously safe-checkable).
            body.append(
                Literal(predicate, terms, positive or predicate == "p")
            )
        head_vars = tuple(
            RVar(draw(st.sampled_from(VARS))) for _ in range(IDB_ARITY)
        )
        try:
            rules.append(Rule(Literal("p", head_vars), tuple(body)))
        except SchemaError:
            # Unsafe draw (head var unbound / negated var unbound):
            # replace with a trivially safe rule to keep the program
            # non-empty.
            rules.append(
                Rule(
                    Literal("p", (RVar("X"), RVar("Y"))),
                    (Literal("e", (RVar("X"), RVar("Y"))),),
                )
            )
    return Program.of(rules, {"e": 2, "v": 1})


@given(
    random_programs(),
    st.integers(min_value=0, max_value=300),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_lambda_fixpoint_matches_datalog_engine(program, seed):
    graph = random_graph_relation(4, 0.35, seed=seed)
    vertices = Relation.unary(
        sorted({value for row in graph.tuples for value in row})
        or ["o1"]
    )
    db = Database.of({"e": graph, "v": vertices})
    baseline = evaluate_program(
        program, db, semantics="inflationary"
    )["p"]
    run = run_fixpoint_query(datalog_to_fixpoint(program), db)
    assert run.relation.same_set(baseline), str(program)
