"""Tests for the FO -> relational algebra compiler (Codd / Theorem 4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.generators import random_database
from repro.errors import EvaluationError
from repro.folog.evaluate import evaluate_fo_query
from repro.folog.formulas import (
    And,
    Atom,
    Equals,
    Exists,
    FConst,
    FVar,
    FalseFormula,
    Forall,
    Formula,
    Not,
    Or,
    Precedes,
    TrueFormula,
)
from repro.queries.fo_compile import compile_fo
from repro.relalg.engine import database_schema, evaluate_ra

SCHEMA = {"R1": 2, "R2": 2}
x, y, z = FVar("x"), FVar("y"), FVar("z")


def R(*terms):
    return Atom("R1", terms)


def S(*terms):
    return Atom("R2", terms)


@st.composite
def fo_formulas(draw, depth: int = 3) -> Formula:
    """Random FO formulas over SCHEMA with free vars among x, y, z."""
    variables = [x, y, z]

    def term():
        return draw(
            st.sampled_from(variables + [FConst("o1"), FConst("o2")])
        )

    def build(d) -> Formula:
        if d == 0:
            choice = draw(st.integers(min_value=0, max_value=3))
            if choice == 0:
                return Atom("R1", (term(), term()))
            if choice == 1:
                return Atom("R2", (term(), term()))
            if choice == 2:
                return Equals(term(), term())
            return Precedes("R1", (term(), term()), (term(), term()))
        choice = draw(st.integers(min_value=0, max_value=5))
        if choice == 0:
            return build(0)
        if choice == 1:
            return And(build(d - 1), build(d - 1))
        if choice == 2:
            return Or(build(d - 1), build(d - 1))
        if choice == 3:
            return Not(build(d - 1))
        if choice == 4:
            return Exists(draw(st.sampled_from("xyz")), build(d - 1))
        return Forall(draw(st.sampled_from("xyz")), build(d - 1))

    return build(depth)


class TestCompileAgainstDirectEvaluation:
    @given(fo_formulas(), st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_random_formulas_agree(self, phi, seed):
        db = random_database([2, 2], [4, 3], universe_size=3, seed=seed)
        from repro.folog.formulas import formula_free_vars

        output = sorted(formula_free_vars(phi) | {"x"})
        expected = evaluate_fo_query(phi, output, db)
        expr = compile_fo(phi, output, SCHEMA)
        got = evaluate_ra(expr, db)
        assert got.same_set(expected)

    @pytest.mark.parametrize(
        "phi, output",
        [
            (TrueFormula(), ["x"]),
            (FalseFormula(), ["x", "y"]),
            (Equals(x, x), ["x"]),
            (Equals(FConst("o1"), FConst("o1")), ["x"]),
            (Equals(FConst("o1"), FConst("o2")), ["x"]),
            (Equals(x, FConst("o1")), ["x"]),
            (Equals(FConst("o1"), x), ["x"]),
            (Equals(x, y), ["x", "y"]),
            (R(x, x), ["x"]),
            (R(FConst("o1"), x), ["x"]),
            (Exists("x", R(x, y)), ["y", "z"]),
            (Forall("y", Or(Not(R(x, y)), S(x, y))), ["x"]),
            (Precedes("R2", (x, y), (z, x)), ["x", "y", "z"]),
        ],
    )
    def test_curated_cases(self, phi, output):
        db = random_database([2, 2], [4, 4], universe_size=3, seed=17)
        expected = evaluate_fo_query(phi, output, db)
        got = evaluate_ra(compile_fo(phi, output, SCHEMA), db)
        assert got.same_set(expected)


class TestCompileErrors:
    def test_free_vars_must_be_outputs(self):
        with pytest.raises(EvaluationError):
            compile_fo(R(x, y), ["x"], SCHEMA)

    def test_output_vars_distinct(self):
        with pytest.raises(EvaluationError):
            compile_fo(R(x, y), ["x", "x"], SCHEMA)

    def test_output_column_order_respected(self):
        db = random_database([2, 2], [4, 4], universe_size=3, seed=21)
        forward = evaluate_ra(
            compile_fo(R(x, y), ["x", "y"], SCHEMA), db
        )
        backward = evaluate_ra(
            compile_fo(R(x, y), ["y", "x"], SCHEMA), db
        )
        assert {t[::-1] for t in forward.as_set()} == backward.as_set()
