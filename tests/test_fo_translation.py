"""Theorem 5.1 tests: the Section 5.2 first-order translation of TLI=0
queries agrees with direct reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.generators import random_database, random_relation
from repro.db.relations import Database
from repro.eval.driver import run_query
from repro.eval.fo_translation import translate_query
from repro.folog.formulas import formula_size
from repro.lam.parser import parse
from repro.queries.language import QueryArity
from repro.queries.relalg_compile import build_ra_query
from repro.relalg.ast import (
    Base,
    ColumnEqualsColumn,
    ColumnEqualsConst,
    schema_with_derived,
)
from tests.test_relalg_compile import SCHEMA, ra_expressions

HANDWRITTEN = [
    # (source, arity) — covering all Lemma 5.6 IR shapes.
    (r"\R. \c. \n. c o5 n", QueryArity((2,), 1)),
    (r"\R. R", QueryArity((2,), 2)),
    (r"\R. \c. \n. R (\x y T. c y x T) n", QueryArity((2,), 2)),
    (r"\R. \c. \n. R (\x y T. Eq x y (c x x T) T) n", QueryArity((2,), 2)),
    (r"\R. \c. \n. R (\x y T. Eq x o1 n (c x y T)) n", QueryArity((2,), 2)),
    (r"\R. \c. \n. c (R (\x y T. x) o9) (R (\x y T. y) o9) n",
     QueryArity((2,), 2)),
    (r"\R. \c. \n. c (R (\x y T. T) o6) o6 n", QueryArity((2,), 2)),
    (r"\R. \c. \n. R (\x y T. c (R (\u v T2. u) o7) y T) n",
     QueryArity((2,), 2)),
    (r"\R. \c. \n. c (R (\x y T. R (\u v T2. T2) x) o9) o8 n",
     QueryArity((2,), 2)),
    (r"\R. \c. \n. n", QueryArity((2,), 3)),
]


class TestHandwrittenQueries:
    @pytest.mark.parametrize("source, arity", HANDWRITTEN)
    def test_translation_agrees_with_reduction(self, source, arity):
        query = parse(source)
        translation = translate_query(query, arity)
        for seed in (1, 2, 3):
            db = Database.of(
                {"R": random_relation(2, 4, seed=seed)}
            )
            direct = run_query(query, db, arity=arity.output).relation
            via_fo = translation.evaluate(db)
            assert via_fo.same_set(direct), f"seed {seed}"

    def test_translation_is_data_independent(self):
        # The formula is computed from the query alone: one translation
        # serves all databases (O(1) data complexity preprocessing).
        query = parse(r"\R. \c. \n. R (\x y T. Eq x y (c x y T) T) n")
        translation = translate_query(query, QueryArity((2,), 2))
        size_before = formula_size(translation.formula)
        for seed in (5, 6):
            db = Database.of({"R": random_relation(2, 5, seed=seed)})
            translation.evaluate(db)
        assert formula_size(translation.formula) == size_before

    def test_empty_database(self):
        from repro.db.relations import Relation

        query = parse(r"\R. \c. \n. R (\x y T. c x y T) n")
        translation = translate_query(query, QueryArity((2,), 2))
        db = Database.of({"R": Relation.empty(2)})
        assert len(translation.evaluate(db)) == 0

    def test_input_count_mismatch_rejected(self):
        from repro.errors import EvaluationError

        query = parse(r"\R. R")
        translation = translate_query(query, QueryArity((2,), 2))
        db = random_database([2, 2], [2, 2], seed=1)
        with pytest.raises(EvaluationError):
            translation.evaluate(db)


class TestCompiledQueries:
    @pytest.mark.parametrize(
        "expr, output_arity",
        [
            (Base("R1").project(1), 1),
            (Base("R1").where(ColumnEqualsColumn(0, 1)), 2),
            (Base("R1").union(Base("R2")), 2),
            (Base("R1").intersect(Base("R2")), 2),
            (Base("R1").minus(Base("R2")), 2),
            (Base("R1").where(ColumnEqualsConst(0, "o1")).project(1, 1), 2),
        ],
        ids=["project", "select", "union", "inter", "diff", "const"],
    )
    def test_operator_suite(self, expr, output_arity):
        query = build_ra_query(expr, ["R1", "R2"], SCHEMA)
        translation = translate_query(
            query, QueryArity((2, 2), output_arity)
        )
        db = random_database([2, 2], [4, 3], universe_size=3, seed=31)
        direct = run_query(query, db, arity=output_arity).relation
        assert translation.evaluate(db).same_set(direct)

    @given(
        ra_expressions(depth=1),
        st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_shallow_expressions(self, expr, seed):
        arity = expr.arity(schema_with_derived(SCHEMA))
        if arity > 3:
            # Wide expressions (products over the 4-ary precedes base)
            # produce formulas whose brute-force FO evaluation enumerates
            # |D|^(2 arity) assignments — covered by the curated cases,
            # skipped in the random sweep to keep the suite fast.
            return
        query = build_ra_query(expr, ["R1", "R2"], SCHEMA)
        translation = translate_query(query, QueryArity((2, 2), arity))
        db = random_database([2, 2], [3, 2], universe_size=3, seed=seed)
        direct = run_query(query, db, arity=arity).relation
        assert translation.evaluate(db).same_set(direct)


class TestMLIQueries:
    def test_let_polymorphic_query_translates(self):
        # An MLI=0 query using R at two accumulator sorts (g and o).
        source = r"\R. \c. \n. c (R (\x y T. x) o9) o1 (R (\x y T. c x y T) n)"
        query = parse(source)
        arity = QueryArity((2,), 2)
        from repro.queries.language import is_mli_query_term

        assert is_mli_query_term(query, arity, 0)
        translation = translate_query(query, arity)
        db = Database.of({"R": random_relation(2, 4, seed=12)})
        direct = run_query(query, db, arity=2).relation
        assert translation.evaluate(db).same_set(direct)
