"""Property test: the Section 5.2 translation on *random* TLI=0 queries.

The generator builds query bodies directly from the Lemma 5.6 grammar —
iterations over the input with g- or o-sorted accumulators, Eq branches,
constructor applications, accumulator references — so every generated term
is a canonical-form-able TLI=0/MLI=0 query.  The property: evaluating the
translated first-order formula agrees with reducing the term, on random
databases.  This covers corners no handwritten suite reaches (deeply nested
o-iterations inside Eq conditions inside pass-through chains, queries that
drop or duplicate their accumulator, order-sensitive queries).
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.generators import random_relation
from repro.db.relations import Database
from repro.eval.driver import run_query
from repro.eval.fo_translation import translate_query
from repro.lam.terms import Abs, Const, Term, Var, app, lam
from repro.queries.language import QueryArity

INPUT_ARITY = 2
OUTPUT_ARITY = 2
CONSTANTS = ["o1", "o2", "o9"]


@st.composite
def lemma_5_6_queries(draw) -> Term:
    """A random TLI=0/MLI=0 query ``λR. λc. λn. <g-term>`` of input arity 2
    and output arity 2, built from the Lemma 5.6 shapes."""
    counter = itertools.count()

    def fresh(prefix):
        return f"{prefix}{next(counter)}"

    def o_term(o_vars, depth):
        # Cases 5-7: constant, o-variable, o-iteration.
        choices = ["const"]
        if o_vars:
            choices.append("var")
        if depth > 0:
            choices.append("iter")
        kind = draw(st.sampled_from(choices))
        if kind == "const":
            return Const(draw(st.sampled_from(CONSTANTS)))
        if kind == "var":
            return Var(draw(st.sampled_from(sorted(o_vars))))
        xs = [fresh("x") for _ in range(INPUT_ARITY)]
        acc = fresh("a")
        body = o_term(o_vars | set(xs) | {acc}, depth - 1)
        init = o_term(o_vars, depth - 1)
        return app(Var("R"), lam(xs + [acc], body), init)

    def g_term(o_vars, g_vars, depth):
        # Cases 1-4: iteration, Eq branch, constructor, accumulator.
        choices = ["tail", "cons"]
        if depth > 0:
            choices += ["iter", "eq"]
        kind = draw(st.sampled_from(choices))
        if kind == "tail":
            return Var(draw(st.sampled_from(sorted(g_vars))))
        if kind == "cons":
            components = [
                o_term(o_vars, max(depth - 1, 0))
                for _ in range(OUTPUT_ARITY)
            ]
            return app(
                Var("c"), *components, g_term(o_vars, g_vars, depth)
            )
        if kind == "eq":
            return app(
                __import__(
                    "repro.lam.terms", fromlist=["EqConst"]
                ).EqConst(),
                o_term(o_vars, depth - 1),
                o_term(o_vars, depth - 1),
                g_term(o_vars, g_vars, depth - 1),
                g_term(o_vars, g_vars, depth - 1),
            )
        xs = [fresh("x") for _ in range(INPUT_ARITY)]
        acc = fresh("T")
        body = g_term(
            o_vars | set(xs), g_vars | {acc}, depth - 1
        )
        init = g_term(o_vars, g_vars, depth - 1)
        return app(Var("R"), lam(xs + [acc], body), init)

    depth = draw(st.integers(min_value=1, max_value=2))
    body = g_term(frozenset(), {"n"}, depth)
    return lam(["R", "c", "n"], body)


@given(
    lemma_5_6_queries(),
    st.integers(min_value=0, max_value=500),
)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_translation_agrees_with_reduction(query, seed):
    arity = QueryArity((INPUT_ARITY,), OUTPUT_ARITY)
    translation = translate_query(query, arity)
    db = Database.of(
        {"R": random_relation(INPUT_ARITY, 3, seed=seed)}
    )
    direct = run_query(query, db, arity=OUTPUT_ARITY).relation
    via_formula = translation.evaluate(db)
    assert via_formula.same_set(direct)
