"""Tests for the first-order logic substrate (Definition 3.5 baseline)."""

import pytest

from repro.db.relations import Database, Relation
from repro.errors import EvaluationError
from repro.folog.evaluate import evaluate_fo_query, evaluate_formula
from repro.folog.formulas import (
    And,
    Atom,
    Equals,
    Exists,
    FConst,
    FVar,
    FalseFormula,
    Forall,
    Not,
    Or,
    Precedes,
    TrueFormula,
    and_all,
    exists_many,
    forall_many,
    formula_constants,
    formula_free_vars,
    formula_size,
    or_all,
)


@pytest.fixture
def db():
    return Database.of(
        {
            "R": Relation.from_tuples(
                2, [("o1", "o2"), ("o2", "o3"), ("o3", "o3")]
            )
        }
    )


x, y, z = FVar("x"), FVar("y"), FVar("z")


class TestFormulaBasics:
    def test_free_vars(self):
        phi = Exists("y", And(Atom("R", (x, y)), Equals(y, z)))
        assert formula_free_vars(phi) == {"x", "z"}

    def test_constants(self):
        phi = Or(Equals(x, FConst("o5")), Atom("R", (FConst("o1"), x)))
        assert formula_constants(phi) == {"o5", "o1"}

    def test_connective_sugar(self):
        phi = ~Atom("R", (x, y)) & TrueFormula() | FalseFormula()
        assert isinstance(phi, Or)

    def test_builders(self):
        assert isinstance(and_all([]), TrueFormula)
        assert isinstance(or_all([]), FalseFormula)
        assert formula_free_vars(
            exists_many(["x", "y"], Atom("R", (x, y)))
        ) == frozenset()
        assert isinstance(
            forall_many(["x"], TrueFormula()), Forall
        )

    def test_size(self):
        assert formula_size(And(TrueFormula(), Not(FalseFormula()))) == 4

    def test_str_rendering(self):
        phi = Forall("x", Precedes("R", (x, y), (y, x)))
        assert "Precedes_R" in str(phi)


class TestEvaluation:
    def test_atom(self, db):
        assert evaluate_formula(
            Atom("R", (x, y)), db, {"x": "o1", "y": "o2"}
        )
        assert not evaluate_formula(
            Atom("R", (x, y)), db, {"x": "o2", "y": "o1"}
        )

    def test_unbound_variable_rejected(self, db):
        with pytest.raises(EvaluationError):
            evaluate_formula(Atom("R", (x, y)), db, {"x": "o1"})

    def test_unknown_relation(self, db):
        with pytest.raises(EvaluationError):
            evaluate_formula(Atom("Q", (x,)), db, {"x": "o1"})

    def test_equality_and_constants(self, db):
        assert evaluate_formula(Equals(FConst("o1"), FConst("o1")), db)
        assert not evaluate_formula(Equals(FConst("o1"), FConst("o2")), db)

    def test_quantifiers(self, db):
        # Every element has an R-successor? o2->o3, o3->o3, o1->o2: yes.
        phi = Forall("x", Exists("y", Atom("R", (x, y))))
        assert evaluate_formula(phi, db)
        # Some element relates to itself.
        assert evaluate_formula(
            Exists("x", Atom("R", (x, x))), db
        )
        # Every element relates to itself: no.
        assert not evaluate_formula(
            Forall("x", Atom("R", (x, x))), db
        )

    def test_quantifier_shadowing(self, db):
        phi = Exists("x", Exists("x", Atom("R", (x, x))))
        assert evaluate_formula(phi, db)

    def test_precedes_semantics(self, db):
        assert evaluate_formula(
            Precedes("R", (FConst("o1"), FConst("o2")),
                     (FConst("o2"), FConst("o3"))),
            db,
        )
        assert not evaluate_formula(
            Precedes("R", (FConst("o2"), FConst("o3")),
                     (FConst("o1"), FConst("o2"))),
            db,
        )
        # Tuples not in the relation never precede.
        assert not evaluate_formula(
            Precedes("R", (FConst("o9"), FConst("o9")),
                     (FConst("o1"), FConst("o2"))),
            db,
        )


class TestFOQueries:
    def test_query_output_in_domain_order(self, db):
        rel = evaluate_fo_query(Atom("R", (x, y)), ["x", "y"], db)
        assert rel.same_set(db["R"])

    def test_free_variable_check(self, db):
        with pytest.raises(EvaluationError):
            evaluate_fo_query(Atom("R", (x, y)), ["x"], db)

    def test_unused_output_variable_ranges_over_domain(self, db):
        rel = evaluate_fo_query(TrueFormula(), ["x"], db)
        assert len(rel) == 3  # |adom| = 3

    def test_extra_constants_extend_domain(self, db):
        rel = evaluate_fo_query(
            Equals(x, FConst("o9")),
            ["x"],
            db,
            extra_constants=["o9"],
        )
        assert rel.tuples == (("o9",),)

    def test_formula_constants_flag(self, db):
        phi = Equals(x, FConst("o9"))
        assert len(evaluate_fo_query(phi, ["x"], db)) == 0
        assert len(
            evaluate_fo_query(
                phi, ["x"], db, include_formula_constants=True
            )
        ) == 1
