"""Tests for the first-order formula text syntax."""

import pytest

from repro.db.generators import random_database
from repro.errors import ParseError
from repro.folog.evaluate import evaluate_fo_query
from repro.folog.formulas import (
    And,
    Atom,
    Equals,
    Exists,
    FConst,
    FVar,
    FalseFormula,
    Forall,
    Not,
    Or,
    Precedes,
    TrueFormula,
)
from repro.folog.parser import parse_formula


class TestParsing:
    def test_relation_atom(self):
        assert parse_formula("R(x, y)") == Atom(
            "R", (FVar("x"), FVar("y"))
        )

    def test_constants(self):
        phi = parse_formula("R(o1, 'weird name', alice)",
                            constants=["alice"])
        assert phi.terms == (
            FConst("o1"),
            FConst("weird name"),
            FVar("alice") if False else FConst("alice"),
        )

    def test_equality(self):
        assert parse_formula("x = y") == Equals(FVar("x"), FVar("y"))
        assert parse_formula("x = 'o9'") == Equals(
            FVar("x"), FConst("o9")
        )

    def test_connective_precedence(self):
        # ~ binds tighter than &, & tighter than |.
        phi = parse_formula("~R(x, x) & S(x, x) | T(x)")
        assert isinstance(phi, Or)
        assert isinstance(phi.left, And)
        assert isinstance(phi.left.left, Not)

    def test_implication_sugar(self):
        phi = parse_formula("R(x, x) -> S(x, x)")
        assert isinstance(phi, Or)
        assert isinstance(phi.left, Not)

    def test_quantifiers_extend_right(self):
        phi = parse_formula("exists x y. R(x, y) & S(y, x)")
        assert isinstance(phi, Exists)
        assert isinstance(phi.body, Exists)
        assert isinstance(phi.body.body, And)

    def test_forall(self):
        phi = parse_formula("forall x. true")
        assert isinstance(phi, Forall)
        assert isinstance(phi.body, TrueFormula)

    def test_truth_constants(self):
        assert isinstance(parse_formula("true"), TrueFormula)
        assert isinstance(parse_formula("false"), FalseFormula)

    def test_precedes_atom(self):
        phi = parse_formula("precedes[R](x, y; z, w)")
        assert phi == Precedes(
            "R", (FVar("x"), FVar("y")), (FVar("z"), FVar("w"))
        )

    def test_parentheses(self):
        phi = parse_formula("~(R(x, x) | S(x, x))")
        assert isinstance(phi, Not)
        assert isinstance(phi.inner, Or)

    @pytest.mark.parametrize(
        "source",
        [
            "",
            "R(x",
            "exists. R(x, x)",
            "x =",
            "R(x, x) &",
            "precedes[R](x; y",
            "R(x, x) extra",
            "@",
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(ParseError):
            parse_formula(source)


class TestParsedFormulasEvaluate:
    def test_end_to_end_agreement_with_ast(self):
        db = random_database([2, 2], [4, 3], universe_size=3, seed=51)
        x, y = FVar("x"), FVar("y")
        pairs = [
            ("exists y. R1(x, y) & ~R2(x, y)",
             Exists("y", And(Atom("R1", (x, y)),
                             Not(Atom("R2", (x, y)))))),
            ("forall y. R1(x, y) -> R2(x, y)",
             Forall("y", Or(Not(Atom("R1", (x, y))),
                            Atom("R2", (x, y))))),
        ]
        for source, ast in pairs:
            parsed = parse_formula(source)
            assert evaluate_fo_query(parsed, ["x"], db) == (
                evaluate_fo_query(ast, ["x"], db)
            )

    def test_through_the_theorem_4_1_pipeline(self):
        from repro.eval.materialize import run_ra_query_materialized
        from repro.queries.fo_compile import compile_fo

        db = random_database([2, 2], [4, 3], universe_size=3, seed=52)
        phi = parse_formula("exists y. R1(x, y) & R2(y, z)")
        expected = evaluate_fo_query(phi, ["x", "z"], db)
        expr = compile_fo(phi, ["x", "z"], {"R1": 2, "R2": 2})
        got = run_ra_query_materialized(expr, db).relation
        assert got.same_set(expected)
