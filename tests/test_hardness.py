"""Tests for the Section 6 complexity lab."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness.gadgets import (
    let_pairing_chain,
    monomorphic_pairing_chain,
    pairing_chain_expanded_size,
    principal_type_tree_size,
    tlc_linear_family,
    wide_equality_family,
)
from repro.hardness.reduction import cnf_to_ml_term, instance_sizes
from repro.hardness.sat import (
    CNF,
    brute_force_satisfiable,
    pigeonhole_cnf,
    random_cnf,
)
from repro.lam.terms import term_size
from repro.types.infer import infer, typable
from repro.types.ml import ml_infer, ml_typable
from repro.types.types import type_size


class TestPairingChain:
    def test_term_size_is_linear(self):
        sizes = [term_size(let_pairing_chain(d)) for d in (2, 4, 8)]
        assert sizes[2] - sizes[1] == 2 * (sizes[1] - sizes[0])
        # Linear growth: constant increment per level.
        assert (sizes[1] - sizes[0]) % 2 == 0

    @pytest.mark.parametrize("depth", [0, 1, 2, 3, 6, 10])
    def test_principal_type_tree_size_matches_recurrence(self, depth):
        result = ml_infer(let_pairing_chain(depth))
        measured = principal_type_tree_size(
            result.subst, result.occurrence_types[()]
        )
        # The recurrence counts the chain value's type; the whole term
        # adds the x0 arrow (2 extra nodes).
        assert measured == pairing_chain_expanded_size(depth) + 2

    def test_exponential_growth(self):
        small = ml_infer(let_pairing_chain(4))
        large = ml_infer(let_pairing_chain(8))
        small_size = principal_type_tree_size(
            small.subst, small.occurrence_types[()]
        )
        large_size = principal_type_tree_size(
            large.subst, large.occurrence_types[()]
        )
        assert large_size > 15 * small_size

    def test_monomorphic_chain_also_types(self):
        # Each x_i is used twice but at the same type: TLC= accepts it.
        assert typable(monomorphic_pairing_chain(4))

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            let_pairing_chain(-1)


class TestLinearFamilies:
    @pytest.mark.parametrize("depth", [1, 8, 64])
    def test_tlc_family_has_constant_type_size(self, depth):
        type_ = infer(tlc_linear_family(depth)).type
        assert type_size(type_) <= 7

    def test_wide_equality_is_low_order(self):
        from repro.types.ml import ml_infer
        from repro.types.order import ground, order

        for arity in (1, 3, 5):
            result = ml_infer(wide_equality_family(arity))
            assert (
                order(ground(result.subst.apply(result.occurrence_types[()])))
                <= 2
            )


class TestSAT:
    def test_satisfied_by(self):
        cnf = CNF(2, ((1, -2),))
        assert cnf.satisfied_by([True, True])
        assert not cnf.satisfied_by([False, True])

    def test_brute_force_finds_assignment(self):
        cnf = CNF(3, ((1, 2, 3), (-1, -2, -3)))
        assignment = brute_force_satisfiable(cnf)
        assert assignment is not None
        assert cnf.satisfied_by(assignment)

    def test_unsat_detected(self):
        cnf = CNF(1, ((1,), (-1,)))
        assert brute_force_satisfiable(cnf) is None

    def test_pigeonhole_unsat(self):
        assert brute_force_satisfiable(pigeonhole_cnf(2)) is None

    def test_bad_literal_rejected(self):
        with pytest.raises(ValueError):
            CNF(2, ((0,),))
        with pytest.raises(ValueError):
            CNF(2, ((3,),))

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_random_cnf_well_formed(self, seed):
        cnf = random_cnf(5, 8, seed=seed)
        assert cnf.num_vars == 5
        assert len(cnf.clauses) == 8
        assert all(len(clause) == 3 for clause in cnf.clauses)
        assert all(
            len({abs(l) for l in clause}) == 3 for clause in cnf.clauses
        )

    def test_random_cnf_deterministic(self):
        assert random_cnf(4, 6, seed=9) == random_cnf(4, 6, seed=9)

    def test_clause_size_bound(self):
        with pytest.raises(ValueError):
            random_cnf(2, 3, clause_size=3)


class TestCNFTerms:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_generated_terms_are_ml_typable(self, seed):
        cnf = random_cnf(4, 6, seed=seed)
        assert ml_typable(cnf_to_ml_term(cnf))

    def test_term_size_linear_in_instance(self):
        small = instance_sizes(random_cnf(4, 4, seed=1))
        large = instance_sizes(random_cnf(4, 12, seed=1))
        per_clause = (
            large["term_size"] - small["term_size"]
        ) / (large["clauses"] - small["clauses"])
        assert per_clause < 30  # constant-size clause gadgets

    def test_bounded_order(self):
        from repro.types.ml import ml_infer

        cnf = random_cnf(3, 5, seed=2)
        result = ml_infer(cnf_to_ml_term(cnf))
        assert result.derivation_order() <= 4  # the MLI=1 bound
