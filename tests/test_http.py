"""Tests for the HTTP edge: schemas, auth, rate limiting, admission,
end-to-end request handling, single-flight through the network, and
graceful drain (in-process and as a real ``repro serve`` subprocess)."""

import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.db.generators import random_database
from repro.errors import ParseError, ReproError
from repro.http import (
    AdmissionController,
    Authenticator,
    QueryEdge,
    RateLimiter,
    ServerConfig,
    parse_batch_body,
    parse_query_body,
)
from repro.http.schemas import (
    ApiError,
    QuerySpec,
    error_response,
    query_http_status,
)
from repro.lam.parser import parse
from repro.obs import HTTP_METRIC_NAMES
from repro.queries.fixpoint import transitive_closure_query
from repro.queries.language import QueryArity
from repro.service.runtime import (
    STATUS_ERROR,
    STATUS_FUEL,
    STATUS_OK,
    STATUS_TIMEOUT,
)

SWAP = r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n"
SIG22 = QueryArity((2, 2), 2)


def make_service():
    from repro.service import QueryService

    db = random_database([2, 2], [8, 6], universe_size=6, seed=11)
    svc = QueryService()
    svc.catalog.register_database("main", db)
    svc.catalog.register_query("swap", parse(SWAP), signature=SIG22)
    svc.catalog.register_query("tc", transitive_closure_query("R1"))
    return svc


def run_edge(scenario, *, service=None, **cfg):
    """Start a :class:`QueryEdge` on an ephemeral port, run the async
    ``scenario(edge)``, always drain, return the scenario's result."""
    service = service or make_service()
    cfg.setdefault("host", "127.0.0.1")
    cfg.setdefault("port", 0)
    edge = QueryEdge(service, ServerConfig(**cfg))

    async def main():
        await edge.start()
        try:
            return await scenario(edge)
        finally:
            await edge.shutdown()

    return asyncio.run(main())


# ---------------------------------------------------------------------------
# Minimal async HTTP/1.1 client (the edge is stdlib-only; so is the test)
# ---------------------------------------------------------------------------

async def _send(writer, method, path, *, body=None, token=None,
                headers=None, close=True):
    payload = b""
    if body is not None:
        payload = json.dumps(body).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: test\r\n"
        f"Content-Length: {len(payload)}\r\n"
    )
    if token is not None:
        head += f"Authorization: Bearer {token}\r\n"
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    if close:
        head += "Connection: close\r\n"
    head += "\r\n"
    writer.write(head.encode("latin-1") + payload)
    await writer.drain()


async def _read_response(reader):
    status_line = await reader.readline()
    assert status_line, "connection closed before a status line"
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


async def request(port, method, path, *, body=None, token=None,
                  headers=None, raw_body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        if raw_body is not None:
            payload = raw_body
            head = (
                f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
                f"Content-Length: {len(payload)}\r\n"
            )
            if token is not None:
                head += f"Authorization: Bearer {token}\r\n"
            head += "Connection: close\r\n\r\n"
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        else:
            await _send(writer, method, path, body=body, token=token,
                        headers=headers)
        status, resp_headers, resp_body = await _read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    parsed = json.loads(resp_body) if resp_body and (
        resp_headers.get("content-type", "").startswith("application/json")
    ) else resp_body
    return status, resp_headers, parsed


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

class TestSchemas:
    def test_parse_query_body_full(self):
        spec = parse_query_body(json.dumps({
            "query": "swap", "database": "main", "engine": "nbe",
            "arity": 2, "fuel": 100, "timeout_s": 1.5, "shards": 2,
            "tag": "t", "include_tuples": False,
        }).encode())
        assert spec == QuerySpec(
            query="swap", database="main", engine="nbe", arity=2,
            fuel=100, timeout_s=1.5, shards=2, tag="t",
            include_tuples=False,
        )

    def test_timeout_accepts_int(self):
        assert parse_query_body(
            b'{"query": "q", "timeout_s": 2}'
        ).timeout_s == 2

    def test_unknown_field_rejected(self):
        with pytest.raises(ApiError) as err:
            parse_query_body(b'{"query": "q", "fuelz": 3}')
        assert err.value.status == 400 and "fuelz" in str(err.value)

    def test_missing_query_rejected(self):
        with pytest.raises(ApiError):
            parse_query_body(b'{"database": "main"}')

    def test_bool_does_not_pose_as_int(self):
        with pytest.raises(ApiError) as err:
            parse_query_body(b'{"query": "q", "fuel": true}')
        assert "wrong type" in str(err.value)

    def test_non_object_rejected(self):
        with pytest.raises(ApiError):
            parse_query_body(b'[1, 2]')

    def test_bad_json_rejected(self):
        with pytest.raises(ApiError) as err:
            parse_query_body(b'{not json')
        assert err.value.code == "bad_request"

    def test_batch_bare_list_and_wrapper(self):
        specs = parse_batch_body(b'[{"query": "a"}, {"query": "b"}]')
        assert [s.query for s in specs] == ["a", "b"]
        specs = parse_batch_body(b'{"requests": [{"query": "c"}]}')
        assert [s.query for s in specs] == ["c"]

    def test_batch_empty_rejected(self):
        with pytest.raises(ApiError):
            parse_batch_body(b'[]')
        with pytest.raises(ApiError):
            parse_batch_body(b'{"requests": []}')

    def test_batch_cap(self):
        body = json.dumps([{"query": "q"}] * 5).encode()
        with pytest.raises(ApiError) as err:
            parse_batch_body(body, max_requests=4)
        assert "cap" in str(err.value)

    def test_error_envelope_shape(self):
        resp = error_response(
            ApiError(429, "over_capacity", "full", retry_after_s=3)
        )
        assert resp.status == 429
        assert resp.headers["Retry-After"] == "3"
        payload = json.loads(resp.body)
        assert payload["error"]["code"] == "over_capacity"
        assert payload["error"]["status"] == 429
        assert payload["error"]["retry_after_s"] == 3

    def test_envelope_without_retry_after(self):
        resp = error_response(ApiError(404, "not_found", "nope"))
        assert "Retry-After" not in resp.headers
        assert "retry_after_s" not in json.loads(resp.body)["error"]

    def test_status_mapping(self):
        class R:
            def __init__(self, status):
                self.status = status

        assert query_http_status(R(STATUS_OK)) == 200
        assert query_http_status(R(STATUS_FUEL)) == 422
        assert query_http_status(R(STATUS_TIMEOUT)) == 504
        assert query_http_status(R(STATUS_ERROR)) == 400
        assert query_http_status(R("???")) == 500

    def test_from_exception_taxonomy(self):
        assert ApiError.from_exception(ParseError("x")).code == "bad_query"
        assert ApiError.from_exception(ReproError("x")).code == "bad_request"
        internal = ApiError.from_exception(ValueError("x"))
        assert internal.status == 500 and internal.code == "internal"
        same = ApiError(401, "unauthorized", "x")
        assert ApiError.from_exception(same) is same


# ---------------------------------------------------------------------------
# Auth
# ---------------------------------------------------------------------------

class TestAuthenticator:
    def test_open_edge_uses_peer(self):
        auth = Authenticator(())
        assert not auth.enabled
        assert auth.principal({}, "10.0.0.9") == "peer:10.0.0.9"

    def test_missing_header(self):
        auth = Authenticator(("s3cret",))
        with pytest.raises(ApiError) as err:
            auth.principal({}, "p")
        assert err.value.status == 401

    def test_wrong_scheme(self):
        auth = Authenticator(("s3cret",))
        with pytest.raises(ApiError):
            auth.principal({"authorization": "Basic s3cret"}, "p")

    def test_wrong_token(self):
        auth = Authenticator(("s3cret",))
        with pytest.raises(ApiError):
            auth.principal({"authorization": "Bearer nope"}, "p")

    def test_principal_is_token_index_not_value(self):
        auth = Authenticator(("alpha", "beta"))
        principal = auth.principal(
            {"authorization": "Bearer beta"}, "p"
        )
        assert principal == "token:1"
        assert "beta" not in principal


# ---------------------------------------------------------------------------
# Rate limiting
# ---------------------------------------------------------------------------

class TestRateLimiter:
    def test_burst_then_deny_then_refill(self):
        now = [0.0]
        limiter = RateLimiter(2.0, 3, clock=lambda: now[0])
        assert all(limiter.allow("c")[0] for _ in range(3))
        denied, retry = limiter.allow("c")
        assert not denied and retry is not None and retry > 0
        now[0] += 1.0  # 2 tokens refilled
        assert limiter.allow("c")[0]
        assert limiter.allow("c")[0]
        assert not limiter.allow("c")[0]

    def test_principals_are_independent(self):
        now = [0.0]
        limiter = RateLimiter(1.0, 1, clock=lambda: now[0])
        assert limiter.allow("a")[0]
        assert not limiter.allow("a")[0]
        assert limiter.allow("b")[0]

    def test_disabled(self):
        limiter = RateLimiter(0.0, 1)
        assert all(limiter.allow("c") == (True, None) for _ in range(100))

    def test_lru_bound(self):
        now = [0.0]
        limiter = RateLimiter(1.0, 1, max_buckets=4, clock=lambda: now[0])
        for i in range(20):
            limiter.allow(f"client-{i}")
        assert len(limiter._buckets) == 4


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

def run_async(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_immediate_admit_and_release(self):
        async def scenario():
            ctl = AdmissionController(100, 200, 1.0)
            ticket = await ctl.admit(60)
            assert ticket.fuel == 60 and ticket.queued_ms == 0.0
            assert ctl.inflight_fuel == 60
            ctl.release(ticket)
            assert ctl.inflight_fuel == 0
            snap = ctl.snapshot()
            assert snap["capacity_fuel"] == 100
            assert snap["queue_depth"] == 0

        run_async(scenario())

    def test_oversize_is_rejected_outright(self):
        async def scenario():
            ctl = AdmissionController(100, 200, 1.0)
            with pytest.raises(ApiError) as err:
                await ctl.admit(101)
            assert err.value.status == 429
            assert err.value.code == "over_capacity"

        run_async(scenario())

    def test_fuel_floor_is_one(self):
        async def scenario():
            ctl = AdmissionController(10, 10, 1.0)
            ticket = await ctl.admit(0)
            assert ticket.fuel == 1

        run_async(scenario())

    def test_fifo_wait_then_admit(self):
        async def scenario():
            ctl = AdmissionController(100, 300, 5.0)
            first = await ctl.admit(100)
            order = []

            async def waiter(name, fuel):
                ticket = await ctl.admit(fuel)
                order.append(name)
                return ticket

            tasks = [
                asyncio.create_task(waiter("big", 90)),
                asyncio.create_task(waiter("small", 10)),
            ]
            await asyncio.sleep(0.05)
            assert ctl.queue_fuel == 100
            ctl.release(first)
            tickets = await asyncio.gather(*tasks)
            # Strict arrival order: the big head is not starved by the
            # small one that would have fit first.
            assert order == ["big", "small"]
            assert all(t.queued_ms > 0 for t in tickets)

        run_async(scenario())

    def test_queue_full_rejected_fast(self):
        async def scenario():
            ctl = AdmissionController(10, 15, 5.0, retry_after_s=2)
            blocker = await ctl.admit(10)
            task = asyncio.create_task(ctl.admit(10))
            await asyncio.sleep(0.02)
            start = time.perf_counter()
            with pytest.raises(ApiError) as err:
                await ctl.admit(10)  # queue holds 10/15; +10 overflows
            assert (time.perf_counter() - start) < 0.5
            assert err.value.status == 429
            assert err.value.retry_after_s == 2
            ctl.release(blocker)
            ctl.release(await task)

        run_async(scenario())

    def test_wait_timeout_is_503(self):
        async def scenario():
            ctl = AdmissionController(10, 100, 0.05)
            blocker = await ctl.admit(10)
            with pytest.raises(ApiError) as err:
                await ctl.admit(5)
            assert err.value.status == 503
            assert err.value.code == "admission_timeout"
            # The timed-out waiter left the queue; capacity is intact.
            assert ctl.queue_fuel == 0
            ctl.release(blocker)
            assert ctl.inflight_fuel == 0

        run_async(scenario())

    def test_cancelled_waiter_returns_fuel(self):
        async def scenario():
            ctl = AdmissionController(10, 100, 5.0)
            blocker = await ctl.admit(10)
            task = asyncio.create_task(ctl.admit(5))
            await asyncio.sleep(0.02)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            ctl.release(blocker)
            assert ctl.inflight_fuel == 0
            assert ctl.queue_fuel == 0

        run_async(scenario())


# ---------------------------------------------------------------------------
# End-to-end over real sockets
# ---------------------------------------------------------------------------

class TestEdgeEndToEnd:
    def test_health_and_liveness(self):
        async def scenario(edge):
            status, _, payload = await request(edge.port, "GET", "/health")
            assert status == 200
            assert payload["ready"] is True and payload["live"] is True
            assert payload["runtime"]["build"]["version"]
            assert payload["runtime"]["uptime_s"] >= 0
            assert payload["admission"]["capacity_fuel"] > 0
            assert payload["catalog"] == {"databases": 1, "queries": 2}
            status, _, live = await request(
                edge.port, "GET", "/health/live"
            )
            assert status == 200 and live["live"] is True

        run_edge(scenario)

    def test_metrics_exposition(self):
        async def scenario(edge):
            await request(edge.port, "GET", "/health")
            status, headers, body = await request(
                edge.port, "GET", "/metrics"
            )
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            text = body.decode("utf-8")
            for name in HTTP_METRIC_NAMES:
                assert name in text, f"missing {name}"
            assert 'repro_http_requests_total{code="200"' in text

        run_edge(scenario)

    def test_auth_required_and_accepted(self):
        async def scenario(edge):
            status, _, payload = await request(
                edge.port, "POST", "/v1/query", body={"query": "swap"}
            )
            assert status == 401
            assert payload["error"]["code"] == "unauthorized"
            # Health and metrics stay open (probes have no secrets).
            status, _, _ = await request(edge.port, "GET", "/health")
            assert status == 200
            status, _, payload = await request(
                edge.port, "POST", "/v1/query",
                body={"query": "swap"}, token="s3cret",
            )
            assert status == 200 and payload["status"] == "ok"
            status, _, payload = await request(
                edge.port, "GET", "/v1/catalog", token="s3cret"
            )
            assert status == 200 and "queries" in payload

        run_edge(scenario, tokens=("s3cret",))

    def test_routing_errors(self):
        async def scenario(edge):
            status, _, payload = await request(edge.port, "GET", "/nope")
            assert status == 404
            assert payload["error"]["code"] == "not_found"
            status, _, payload = await request(
                edge.port, "GET", "/v1/query"
            )
            assert status == 405
            assert payload["error"]["code"] == "method_not_allowed"
            status, _, payload = await request(
                edge.port, "POST", "/v1/query", raw_body=b"{broken"
            )
            assert status == 400
            status, _, payload = await request(
                edge.port, "POST", "/v1/query", body={"query": "ghost"}
            )
            assert status == 404
            assert payload["error"]["code"] == "unknown_query"
            status, _, payload = await request(
                edge.port, "POST", "/v1/query",
                body={"query": "swap", "database": "ghost"},
            )
            assert status == 404
            assert payload["error"]["code"] == "unknown_database"

        run_edge(scenario)

    def test_query_ok_with_admission_block(self):
        async def scenario(edge):
            status, _, payload = await request(
                edge.port, "POST", "/v1/query",
                body={"query": "swap", "database": "main"},
            )
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["arity"] == 2 and payload["tuples"]
            assert payload["admission"]["certified_fuel"] > 0
            assert payload["admission"]["queued_ms"] == 0.0
            status, _, payload = await request(
                edge.port, "POST", "/v1/query",
                body={"query": "swap", "include_tuples": False},
            )
            assert status == 200 and "tuples" not in payload

        run_edge(scenario)

    def test_fixpoint_on_multi_relation_database(self):
        # make_service registers "main" with two relations (R1, R2) and
        # "tc" reading only R1: the fixpoint engine must evaluate against
        # the multi-relation database (the ROADMAP decode bug) and the
        # edge must price admission from R1's statistics alone.
        async def scenario(edge):
            status, _, payload = await request(
                edge.port, "POST", "/v1/query",
                body={"query": "tc", "database": "main"},
            )
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["arity"] == 2
            assert payload["engine"] == "fixpoint"

        run_edge(scenario)

    def test_schema_contract_rejected_at_admission(self):
        from repro.db.relations import Database, Relation
        from repro.service import QueryService

        svc = make_service()
        # A second database with three relations: "swap" binds exactly
        # two inputs positionally, so the contract (TLI024) fails before
        # any fuel is admitted.
        svc.catalog.register_database(
            "wide",
            Database.of({
                "A": Relation.from_tuples(2, [("a", "b")]),
                "B": Relation.from_tuples(2, [("b", "c")]),
                "C": Relation.from_tuples(1, [("a",)]),
            }),
        )

        async def scenario(edge):
            status, _, payload = await request(
                edge.port, "POST", "/v1/query",
                body={"query": "swap", "database": "wide"},
            )
            assert status == 400
            assert payload["error"]["code"] == "bad_query"
            assert "TLI024" in payload["error"]["message"]

        run_edge(scenario, service=svc)

    def test_fuel_exhausted_maps_to_422(self):
        async def scenario(edge):
            status, _, payload = await request(
                edge.port, "POST", "/v1/query",
                # Fuel applies to reduction engines, so pin "nbe" (the
                # auto-selected compiled engine never exhausts fuel).
                body={"query": "swap", "fuel": 2, "engine": "nbe"},
            )
            assert status == 422
            assert payload["status"] == "fuel_exhausted"

        run_edge(scenario)

    def test_batch_roundtrip(self):
        async def scenario(edge):
            body = {"requests": [
                {"query": "swap"},
                {"query": "swap"},
                {"query": "swap", "database": "main"},
            ]}
            status, _, payload = await request(
                edge.port, "POST", "/v1/batch", body=body
            )
            assert status == 200
            assert [r["status"] for r in payload["responses"]] == ["ok"] * 3
            assert payload["stats"]["requests"] == 3
            assert payload["admission"]["certified_fuel"] > 0
            status, _, payload = await request(
                edge.port, "POST", "/v1/batch",
                body=[{"query": "swap"}, {"query": "ghost"}],
            )
            assert status == 404

        run_edge(scenario)

    def test_rate_limit_429(self):
        async def scenario(edge):
            seen = []
            for _ in range(4):
                status, headers, payload = await request(
                    edge.port, "GET", "/v1/catalog"
                )
                seen.append(status)
            assert seen[:2] == [200, 200]
            assert 429 in seen[2:]
            assert payload["error"]["code"] == "rate_limited"
            assert "retry-after" in headers

        run_edge(scenario, rate_limit=0.001, rate_burst=2)

    def test_oversize_plan_rejected_429(self):
        async def scenario(edge):
            status, _, payload = await request(
                edge.port, "POST", "/v1/query", body={"query": "swap"}
            )
            assert status == 429
            assert payload["error"]["code"] == "over_capacity"

        # Far below any certified plan cost: nothing can ever run.
        run_edge(scenario, max_inflight_fuel=10, max_queue_fuel=10)

    def test_overload_rejected_fast_at_the_door(self):
        from repro.analysis.analyzer import fuel_budget
        from repro.analysis.cost import DatabaseStats

        service = make_service()
        entry = service.catalog.get_query("swap")
        db_entry = service.catalog.get_database("main")
        stats = db_entry.stats or DatabaseStats.of(db_entry.database)
        fuel = fuel_budget(entry.effective_cost, stats, default=10 ** 7)

        async def scenario(edge):
            results = await asyncio.gather(*[
                request(edge.port, "POST", "/v1/query",
                        body={"query": "swap"})
                for _ in range(4)
            ])
            statuses = sorted(status for status, _, _ in results)
            # The first request holds the whole capacity (debug delay
            # keeps it in flight); with a token queue and a short wait,
            # the rest are refused at the door.
            assert statuses[0] == 200
            assert all(s in (429, 503) for s in statuses[1:])
            rejected = [p for s, _, p in results if s != 200]
            assert all("error" in p for p in rejected)
            # Fuel accounting drained back to zero.
            assert edge.admission.inflight_fuel == 0

        run_edge(
            scenario, service=service,
            max_inflight_fuel=fuel, max_queue_fuel=1,
            queue_timeout_s=0.05, rate_limit=0.0,
            debug_delay_ms=300.0,
        )


class TestFlightAndExplain:
    def test_traceparent_adopted_and_echoed(self):
        from repro.obs import make_trace_id

        trace = make_trace_id()

        async def scenario(edge):
            status, headers, payload = await request(
                edge.port, "POST", "/v1/query",
                body={"query": "swap", "database": "main"},
                headers={"traceparent": f"00-{trace}-00f067aa0ba902b7-01"},
            )
            assert status == 200
            assert payload["trace_id"] == trace
            assert headers["traceparent"].split("-")[1] == trace
            # Without a caller header the edge mints a fresh id.
            status, headers, payload = await request(
                edge.port, "POST", "/v1/query",
                body={"query": "swap", "database": "main"},
            )
            assert status == 200
            assert payload["trace_id"]
            assert payload["trace_id"] != trace
            assert headers["traceparent"].split("-")[1] == (
                payload["trace_id"]
            )

        run_edge(scenario)

    def test_explain_route_and_flight_lookup(self):
        from repro.obs import make_trace_id

        trace = make_trace_id()

        async def scenario(edge):
            status, _, payload = await request(
                edge.port, "POST", "/v1/explain",
                body={"query": "swap", "database": "main", "shards": 2},
                headers={"traceparent": f"00-{trace}-00f067aa0ba902b7-01"},
            )
            assert status == 200
            report = payload["explain"]
            assert report["trace_id"] == trace
            assert "explain" in report["reasons"]
            assert report["static"]["order"] == 3
            assert report["static"]["cost"]
            assert report["static"]["distribution"]["mode"]
            rows = report["observed"]["shards"]
            assert sorted(row["shard"] for row in rows) == [0, 1]
            workers = [
                s for s in report["spans"] if s["name"] == "worker.task"
            ]
            assert sorted(w["attrs"]["shard"] for w in workers) == [0, 1]
            assert all(s["trace_id"] == trace for s in report["spans"])
            # The same report is retrievable from the flight recorder.
            status, _, payload = await request(
                edge.port, "GET", f"/debug/flight?trace_id={trace}"
            )
            assert status == 200
            assert payload["records"][0]["trace_id"] == trace
            assert payload["stats"]["retained"] >= 1
            status, _, payload = await request(
                edge.port, "GET", "/debug/flight?trace_id=deadbeef"
            )
            assert status == 404
            assert payload["error"]["code"] == "unknown_trace"
            status, _, payload = await request(
                edge.port, "GET", "/debug/flight?limit=1"
            )
            assert status == 200
            assert len(payload["records"]) == 1

        run_edge(scenario)

    def test_query_with_explain_field(self):
        async def scenario(edge):
            status, _, payload = await request(
                edge.port, "POST", "/v1/query",
                body={"query": "swap", "database": "main",
                      "explain": True},
            )
            assert status == 200
            assert payload["explain"]["static"]["query"] == "swap"
            # Plain queries carry no report in the payload.
            status, _, payload = await request(
                edge.port, "POST", "/v1/query",
                body={"query": "swap", "database": "main"},
            )
            assert status == 200 and "explain" not in payload

        run_edge(scenario)

    def test_flight_route_respects_auth_and_capacity_zero(self):
        async def scenario(edge):
            status, _, payload = await request(
                edge.port, "GET", "/debug/flight"
            )
            assert status == 401
            status, _, payload = await request(
                edge.port, "GET", "/debug/flight", token="s3cret"
            )
            assert status == 200
            assert payload["records"] == []

        run_edge(scenario, tokens=("s3cret",))

        async def disabled(edge):
            assert edge.flight is None
            status, _, payload = await request(
                edge.port, "GET", "/debug/flight"
            )
            assert status == 404
            assert payload["error"]["code"] == "flight_disabled"
            # Queries still serve (and still propagate trace ids).
            status, _, payload = await request(
                edge.port, "POST", "/v1/query",
                body={"query": "swap", "database": "main"},
            )
            assert status == 200 and payload["trace_id"]

        run_edge(disabled, flight_capacity=0)

    def test_exemplar_on_http_latency(self):
        async def scenario(edge):
            status, _, _ = await request(
                edge.port, "POST", "/v1/explain",
                body={"query": "swap", "database": "main"},
            )
            assert status == 200
            snap = edge.metrics["http_latency"].snapshot(
                route="/v1/explain"
            )
            exemplars = snap.get("exemplars") or {}
            assert exemplars, "no exemplar recorded on http_latency"
            trace_ids = {ex["trace_id"] for ex in exemplars.values()}
            assert all(len(t) == 32 for t in trace_ids)
            # The exemplar links to a retrievable flight record.
            for trace in trace_ids:
                assert edge.flight.lookup(trace) is not None

        run_edge(scenario)


class TestSingleFlightOverHttp:
    def test_identical_concurrent_requests_evaluate_once(self):
        service = make_service()
        original = service._evaluate
        started = []

        def slow_evaluate(*args, **kwargs):
            started.append(time.monotonic())
            time.sleep(0.25)
            return original(*args, **kwargs)

        service._evaluate = slow_evaluate
        clients = 5

        async def scenario(edge):
            results = await asyncio.gather(*[
                request(edge.port, "POST", "/v1/query",
                        body={"query": "swap", "database": "main"})
                for _ in range(clients)
            ])
            assert [status for status, _, _ in results] == [200] * clients
            tuple_sets = {
                json.dumps(payload["tuples"], sort_keys=True)
                for _, _, payload in results
            }
            assert len(tuple_sets) == 1

        run_edge(scenario, service=service, workers=clients,
                 rate_limit=0.0)
        # Exactly one evaluation; everyone else waited on the in-flight
        # one (not served from a later cache lookup race).
        assert len(started) == 1
        stats = service.cache.stats()
        assert stats.inflight_waits == clients - 1
        assert stats.misses == 1
        assert stats.hits == clients - 1


class TestGracefulDrain:
    def test_inflight_request_completes_then_connections_close(self):
        service = make_service()

        async def scenario(edge):
            port = edge.port
            reader_a, writer_a = await asyncio.open_connection(
                "127.0.0.1", port
            )
            reader_b, writer_b = await asyncio.open_connection(
                "127.0.0.1", port
            )
            try:
                # A has a slow query in flight when the drain begins.
                await _send(writer_a, "POST", "/v1/query",
                            body={"query": "swap"}, close=False)
                await asyncio.sleep(0.1)
                drain = asyncio.create_task(edge.shutdown())
                await asyncio.sleep(0.05)
                assert edge.draining
                # New work on an existing connection is refused.
                await _send(writer_b, "POST", "/v1/query",
                            body={"query": "swap"}, close=False)
                status_b, headers_b, body_b = await _read_response(
                    reader_b
                )
                assert status_b == 503
                assert json.loads(body_b)["error"]["code"] == "draining"
                assert headers_b["connection"] == "close"
                # The in-flight request still gets its full answer.
                status_a, headers_a, body_a = await _read_response(
                    reader_a
                )
                assert status_a == 200
                assert json.loads(body_a)["status"] == "ok"
                assert headers_a["connection"] == "close"
                await drain
            finally:
                for writer in (writer_a, writer_b):
                    writer.close()
            # Drained: the listener is gone and the service is closed.
            assert service.closed
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)

        async def main():
            edge = QueryEdge(service, ServerConfig(
                host="127.0.0.1", port=0, debug_delay_ms=400.0,
            ))
            await edge.start()
            await scenario(edge)

        asyncio.run(main())

    def test_shutdown_idempotent_without_traffic(self):
        async def scenario(edge):
            await edge.shutdown()
            await edge.shutdown()
            assert edge.service.closed

        run_edge(scenario)


LISTEN_RE = re.compile(r"listening on http://127\.0\.0\.1:(\d+)")


class TestServeSubprocess:
    """The acceptance drain test: a real ``repro serve`` process,
    SIGTERM mid-batch, every in-flight response delivered, exit 0."""

    def test_sigterm_mid_batch_flushes_and_exits_zero(self, tmp_path):
        db_path = tmp_path / "db.json"
        db_path.write_text(json.dumps(
            {"E": [["o1", "o2"], ["o2", "o3"], ["o3", "o4"]]}
        ))
        repo_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        ))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo_root, "src")
        env["REPRO_HTTP_DEBUG_DELAY_MS"] = "600"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--db", f"main={db_path}",
                "--fixpoint", "tc=tc",
                "--port", "0", "--workers", "4",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            match = LISTEN_RE.search(banner)
            assert match, f"no listen banner in {banner!r}"
            port = int(match.group(1))

            body = json.dumps({"requests": [
                {"query": "tc", "tag": "a"},
                {"query": "tc", "tag": "b"},
            ]}).encode()
            head = (
                f"POST /v1/batch HTTP/1.1\r\nHost: test\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            with socket.create_connection(("127.0.0.1", port), 5) as sock:
                sock.sendall(head + body)
                time.sleep(0.2)  # the batch is now in flight
                proc.send_signal(signal.SIGTERM)
                sock.settimeout(30)
                raw = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    raw += chunk
            header_blob, _, payload_blob = raw.partition(b"\r\n\r\n")
            status_line = header_blob.split(b"\r\n", 1)[0]
            assert b"200" in status_line, raw[:200]
            payload = json.loads(payload_blob)
            assert len(payload["responses"]) == 2
            assert all(
                r["status"] == "ok" for r in payload["responses"]
            )

            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, (out, err)
            assert "drained; shard pool closed" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
