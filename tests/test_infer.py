"""Tests for Curry-style TLC= principal-type reconstruction."""

import pytest

from repro.errors import OrderBoundError, TypeInferenceError
from repro.lam.combinators import (
    church_numeral,
    parity_term,
    true_term,
    xor_term,
)
from repro.lam.parser import parse
from repro.lam.terms import Abs, Var, app
from repro.types.check import check_church, fully_annotated
from repro.types.infer import (
    check_order_bound,
    infer,
    principal_type,
    term_order,
    typable,
)
from repro.types.pretty import pretty_type
from repro.types.types import Arrow, G, O, TypeVar, arrow, bool_type, eq_type
from repro.types.unify import unifiable, unify


class TestPrincipalTypes:
    def test_identity(self):
        type_ = principal_type(parse(r"\x. x"))
        assert isinstance(type_, Arrow)
        assert type_.left == type_.right

    def test_constants_are_o(self):
        assert principal_type(parse("o1")) == O

    def test_eq_constant_type(self):
        assert principal_type(parse("Eq")) == eq_type()

    def test_church_true(self):
        # Annotated True types exactly at Bool.
        assert principal_type(true_term()) == bool_type()

    def test_unannotated_k_is_polymorphic(self):
        type_ = principal_type(parse(r"\x. \y. x"))
        args, base = (type_.left, type_.right)
        assert isinstance(type_, Arrow)
        # a -> b -> a with a, b distinct variables.
        assert isinstance(args, TypeVar)
        assert isinstance(base, Arrow)
        assert base.right == args
        assert base.left != args

    def test_application_propagates(self):
        type_ = principal_type(parse(r"(\x. Eq x) o1"))
        assert type_ == arrow(O, G, G, G)

    def test_self_application_untypable(self):
        assert not typable(parse(r"\x. x x"))

    def test_eq_forces_operand_types(self):
        assert not typable(parse(r"\x. Eq x x (x o1) (x o1)"))

    def test_free_variables_get_shared_assumptions(self):
        # f used at two argument types that must unify.
        assert typable(parse("f o1"))
        assert not typable(parse(r"\g. g (f o1) (f (\y. y))"))

    def test_env_assumption_respected(self):
        result = infer(parse("x"), env={"x": O})
        assert result.type == O
        with pytest.raises(TypeInferenceError):
            infer(parse("x o1"), env={"x": O})

    def test_principality(self):
        # Every other typing is an instance of the principal one.
        term = parse(r"\x. \y. x")
        principal = principal_type(term)
        specific = arrow(O, G, O)
        assert unifiable(principal, specific)


class TestAnnotations:
    def test_consistent_annotation_accepted(self):
        assert typable(parse(r"\x:o. Eq x x"))

    def test_inconsistent_annotation_rejected(self):
        assert not typable(parse(r"\x:g. Eq x x"))

    def test_annotations_can_be_ignored(self):
        term = parse(r"\x:g. Eq x x")
        assert infer(term, check_annotations=False) is not None

    def test_church_check_agrees_with_curry(self):
        for term in (true_term(), xor_term(), parity_term()):
            assert fully_annotated(term)
            church = check_church(term)
            curry = principal_type(term)
            # The Church typing must be an instance of the principal type.
            assert unifiable(curry, church)

    def test_church_check_requires_annotations(self):
        with pytest.raises(TypeInferenceError):
            check_church(parse(r"\x. x"))


class TestOrders:
    def test_term_order_of_identity(self):
        assert term_order(parse(r"\x. x")) == 1

    def test_term_order_of_numerals(self):
        assert term_order(church_numeral(3)) == 2

    def test_order_bound_check(self):
        check_order_bound(parse(r"\x. x"), 1)
        with pytest.raises(OrderBoundError):
            check_order_bound(church_numeral(2), 1)

    def test_derivation_order_includes_subterms(self):
        # (λn. o1) 2̄ has type o (order 0) but its derivation mentions the
        # numeral's order-2 type and the order-3 consumer (λn. o1).
        term = app(Abs("n", parse("o1")), church_numeral(2))
        result = infer(term)
        assert result.type == O
        assert result.derivation_order() == 3

    def test_occurrence_types_are_tracked(self):
        result = infer(parse(r"(\x. x) o1"))
        assert result.occurrence_type((1,)) == O  # the argument
        assert result.occurrence_type(()) == O


class TestMonomorphicLet:
    def test_let_in_tlc_is_monomorphic(self):
        # let f = λx. x in f f needs polymorphism: TLC= rejects it.
        assert not typable(parse(r"let f = \x. x in f f"))

    def test_monomorphic_let_accepted(self):
        assert typable(parse(r"let f = \x. x in f o1"))
