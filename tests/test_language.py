"""Tests for TLI=_i / MLI=_i query-term recognition (Lemma 3.9)."""

import pytest

from repro.errors import QueryTermError
from repro.lam.parser import parse
from repro.queries.fixpoint import build_fixpoint_query, transitive_closure_query
from repro.queries.language import (
    QueryArity,
    is_mli_query_term,
    is_tli_query_term,
    mli_query_order,
    recognize_mli,
    recognize_tli,
    tli_query_order,
)
from repro.queries.operators import intersection_term, union_term
from repro.types.types import BaseG, TypeVar


class TestRecognitionBasics:
    def test_identity_query(self):
        assert is_tli_query_term(parse(r"\R. R"), QueryArity((2,), 2), 0)

    def test_empty_query(self):
        assert is_tli_query_term(
            parse(r"\R. \c. \n. n"), QueryArity((2,), 3), 0
        )

    def test_constant_query(self):
        assert is_tli_query_term(
            parse(r"\R. \c. \n. c o1 o2 n"), QueryArity((2,), 2), 0
        )

    def test_intersection_is_tli0(self):
        signature = QueryArity((2, 2), 2)
        assert is_tli_query_term(intersection_term(2), signature, 0)
        assert is_mli_query_term(intersection_term(2), signature, 0)

    def test_wrong_output_arity_rejected(self):
        assert not is_tli_query_term(
            intersection_term(2), QueryArity((2, 2), 3), 0
        )

    def test_wrong_input_arity_rejected(self):
        assert not is_tli_query_term(
            intersection_term(2), QueryArity((2, 1), 2), 0
        )

    def test_untypable_rejected(self):
        assert not is_tli_query_term(
            parse(r"\R. R R"), QueryArity((2,), 2), 0
        )

    def test_too_few_binders_rejected(self):
        with pytest.raises(QueryTermError):
            recognize_tli(parse(r"\R. R"), QueryArity((2, 2), 2))

    def test_duplicate_binders_rejected(self):
        with pytest.raises(QueryTermError):
            recognize_tli(
                parse(r"\R. \R. R"), QueryArity((2, 2), 2)
            )


class TestResultAccumulatorRule:
    def test_accumulator_must_not_be_o(self):
        # λR. λc. λn. c (c o1 o1) n would force the accumulator to o —
        # build a term where the tail has type o.
        term = parse(r"\R. \c. \n. c o1 o2")
        # c o1 o2 : d forces n-position absent; this one just isn't of
        # relation type at all.
        assert not is_tli_query_term(term, QueryArity((2,), 2), 0)

    def test_free_accumulator_reported(self):
        result = recognize_tli(parse(r"\R. R"), QueryArity((2,), 2))
        assert isinstance(
            result.result_accumulator, (TypeVar, BaseG)
        )

    def test_eq_forces_g_accumulator(self):
        term = parse(r"\R. \c. \n. R (\x y T. Eq x y (c x y T) T) n")
        result = recognize_tli(term, QueryArity((2,), 2))
        assert isinstance(result.result_accumulator, BaseG)


class TestOrderMeasurement:
    def test_tli0_queries_have_order_3(self):
        assert tli_query_order(
            intersection_term(2), QueryArity((2, 2), 2)
        ) == 3
        assert tli_query_order(
            union_term(1), QueryArity((1, 1), 1)
        ) == 3

    def test_fixpoint_query_has_order_4(self):
        term = build_fixpoint_query(
            transitive_closure_query("E"), style="tli"
        )
        assert tli_query_order(term, QueryArity((2,), 2)) == 4

    def test_mli_order_of_fixpoint(self):
        term = build_fixpoint_query(
            transitive_closure_query("E"), style="mli"
        )
        assert mli_query_order(term, QueryArity((2,), 2)) == 4


class TestTLIvsMLI:
    def test_mli_style_fixpoint_is_not_tli(self):
        # Without Copy gadgets the occurrences of E need two accumulator
        # types: "These typings do not unify, so ... it is necessary to
        # use let-polymorphism" (Section 4).
        term = build_fixpoint_query(
            transitive_closure_query("E"), style="mli"
        )
        signature = QueryArity((2,), 2)
        assert is_mli_query_term(term, signature, 1)
        assert not is_tli_query_term(term, signature, 1)

    def test_tli_style_fixpoint_is_both(self):
        term = build_fixpoint_query(
            transitive_closure_query("E"), style="tli"
        )
        signature = QueryArity((2,), 2)
        assert is_tli_query_term(term, signature, 1)
        assert is_mli_query_term(term, signature, 1)

    def test_fixpoint_is_not_order_0(self):
        term = build_fixpoint_query(
            transitive_closure_query("E"), style="tli"
        )
        assert not is_tli_query_term(term, QueryArity((2,), 2), 0)

    def test_every_tli_query_is_mli(self):
        # TLC= is a subset of core-ML= (Section 2.2).
        for term, signature in (
            (intersection_term(2), QueryArity((2, 2), 2)),
            (parse(r"\R. R"), QueryArity((1,), 1)),
        ):
            if is_tli_query_term(term, signature, 0):
                assert is_mli_query_term(term, signature, 0)
