"""Tests for the materializing RA-term evaluator."""

import pytest

from repro.db.generators import random_database
from repro.eval.driver import run_query
from repro.eval.materialize import run_ra_query_materialized
from repro.errors import SchemaError
from repro.lam.alpha import alpha_equal
from repro.queries.relalg_compile import build_ra_query
from repro.relalg.ast import (
    Base,
    ColumnEqualsColumn,
    Difference,
    Product,
    adom,
    precedes,
    schema_with_derived,
)
from repro.relalg.engine import evaluate_ra


@pytest.fixture
def db():
    return random_database([2, 2], [4, 3], universe_size=3, seed=41)


SCHEMA = {"R1": 2, "R2": 2}


class TestMaterializedEvaluation:
    def test_deep_negation_nesting(self, db):
        # The motivating case: ¬∃¬-style nesting whose whole-term lazy
        # reduction cascades (see the module docstring).
        domain2 = Product(adom(), adom())
        inner = Difference(domain2, Base("R1"))
        expr = Difference(domain2, inner)  # double complement = R1's set
        result = run_ra_query_materialized(expr, db)
        assert result.relation.same_set(db["R1"])

    def test_same_normal_form_as_whole_term(self, db):
        expr = Base("R1").intersect(Base("R2")).project(1)
        query = build_ra_query(expr, ["R1", "R2"], SCHEMA)
        whole = run_query(query, db, arity=1).normal_form
        materialized = run_ra_query_materialized(expr, db).normal_form
        assert alpha_equal(whole, materialized)

    def test_derived_bases(self, db):
        for expr in (adom(), precedes("R1")):
            expected = evaluate_ra(expr, db)
            got = run_ra_query_materialized(expr, db).relation
            assert got.same_set(expected)

    def test_unknown_base_rejected(self, db):
        with pytest.raises(SchemaError):
            run_ra_query_materialized(Base("missing"), db)

    def test_selection_and_product(self, db):
        expr = Product(Base("R1"), Base("R2")).where(
            ColumnEqualsColumn(1, 2)
        )
        expected = evaluate_ra(expr, db)
        got = run_ra_query_materialized(expr, db).relation
        assert got.same_set(expected)

    def test_engine_label(self, db):
        assert (
            run_ra_query_materialized(Base("R1"), db).engine
            == "materialized"
        )
