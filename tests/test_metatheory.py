"""Property tests for the Section 2.1 metatheory on randomized terms.

The paper relies on three classical properties of TLC= / core-ML=
(Church-Rosser, strong normalization, subject reduction "reduction
preserves types").  These are theorems about the calculus, not about this
implementation — but an implementation bug in substitution, delta, or the
normalizers would break them, so they make sharp property tests.
Random *typable* terms are obtained by filtering the untyped generator.
"""

from hypothesis import HealthCheck, assume, given, settings

from repro.errors import FuelExhausted
from repro.lam.alpha import alpha_equal
from repro.lam.nbe import nbe_normalize
from repro.lam.reduce import Strategy, is_normal_form, normalize, step
from repro.types.infer import infer, typable
from repro.types.order import ground
from repro.types.unify import unifiable
from tests.conftest import untyped_terms

FUEL = 3000


def _matches(general, specific, bindings):
    """Is ``specific`` a substitution instance of ``general``?

    One-way matching: only ``general``'s variables may bind.  The two types
    come from independent ``infer`` runs, so their variable names overlap
    with unrelated meanings — plain unification would clash spuriously.
    """
    from repro.types.types import Arrow, TypeVar

    if isinstance(general, TypeVar):
        bound = bindings.get(general.name)
        if bound is None:
            bindings[general.name] = specific
            return True
        return bound == specific
    if isinstance(general, Arrow):
        return (
            isinstance(specific, Arrow)
            and _matches(general.left, specific.left, bindings)
            and _matches(general.right, specific.right, bindings)
        )
    return general == specific


@given(untyped_terms(max_depth=4))
@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
def test_subject_reduction(term):
    """If e types at t and e > e', then e' types at t: the reduct's
    principal type is at least as general (t is an instance of it)."""
    assume(typable(term))
    before = infer(term).type
    outcome = step(term)
    assume(outcome is not None)
    after = infer(outcome[0]).type
    assert _matches(after, before, {})


@given(untyped_terms(max_depth=4))
@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
def test_strong_normalization(term):
    """Typable terms reach a normal form within bounded fuel."""
    assume(typable(term))
    outcome = normalize(term, fuel=FUEL)
    assert is_normal_form(outcome.term)


@given(untyped_terms(max_depth=4))
@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
def test_church_rosser(term):
    """Normal order and applicative order meet at the same normal form."""
    assume(typable(term))
    normal = normalize(term, Strategy.NORMAL_ORDER, fuel=FUEL).term
    applicative = normalize(
        term, Strategy.APPLICATIVE_ORDER, fuel=FUEL
    ).term
    assert alpha_equal(normal, applicative)


@given(untyped_terms(max_depth=4))
@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
def test_nbe_equals_smallstep(term):
    """The two normalizers implement the same reduction relation."""
    assume(typable(term))
    assert alpha_equal(
        nbe_normalize(term), normalize(term, fuel=FUEL).term
    )


@given(untyped_terms(max_depth=4))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
def test_normal_forms_are_fixed_points(term):
    """Normalizing twice equals normalizing once."""
    assume(typable(term))
    once = normalize(term, fuel=FUEL).term
    twice = normalize(once, fuel=FUEL)
    assert twice.steps == 0
    assert twice.term == once


@given(untyped_terms(max_depth=4))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
def test_untypable_terms_may_diverge_but_reduction_is_safe(term):
    """Even on untypable terms the engine either normalizes or runs out of
    fuel — it never crashes or produces a non-term."""
    try:
        outcome = normalize(term, fuel=200)
    except FuelExhausted:
        return
    assert is_normal_form(outcome.term)
