"""Tests for core-ML= reconstruction with let-polymorphism (Section 2.2)."""

import pytest
from hypothesis import given, settings

from repro.errors import OrderBoundError, TypeInferenceError
from repro.lam.parser import parse
from repro.lam.terms import expand_lets
from repro.types.infer import typable
from repro.types.ml import (
    TypeScheme,
    ml_check_order_bound,
    ml_infer,
    ml_principal_type,
    ml_term_order,
    ml_typable,
    ml_typable_by_expansion,
)
from repro.types.types import Arrow, G, O, TypeVar, relation_type
from tests.conftest import untyped_terms


class TestLetPolymorphism:
    def test_paper_example(self):
        # "let x = (λz. z) in (x x) is in core-ML but (λx. x x)(λz. z) is
        # not in TLC" (Section 2.2).
        assert ml_typable(parse(r"let x = \z. z in x x"))
        assert not typable(parse(r"(\x. x x) (\z. z)"))

    def test_lambda_bound_stays_monomorphic(self):
        assert not ml_typable(parse(r"\x. (\f. f f) x"))
        assert not ml_typable(parse(r"\f. f f"))

    def test_polymorphic_use_at_two_types(self):
        term = parse(r"let f = \x. x in Eq (f o1) (f o2) (f a) (f b)")
        assert ml_typable(term)

    def test_generalization_respects_environment(self):
        # The classic soundness pitfall: in λy. let g = λz. y in ..., the
        # scheme of g must generalize z's type but NOT y's.
        good = parse(r"\y. let g = \z. y in Eq (g o1) (g (\w. w)) a b")
        # g used at two argument types (generalized z) but one result type.
        assert ml_typable(good)
        # Using g's *result* at two incompatible types must fail — y is
        # lambda-bound, hence monomorphic.
        bad = parse(
            r"\y. let g = \z. y in Eq ((g o1) o1) ((g o2) (\w. w)) a b"
        )
        assert not ml_typable(bad)

    def test_tlc_subset_of_ml(self):
        # "TLC= is a subset of core-ML=".
        for source in (r"\x. x", r"\x. Eq x x", r"(\x. \y. x) o1"):
            term = parse(source)
            assert typable(term) and ml_typable(term)

    def test_same_expressive_power_via_expansion(self):
        # Operationally let x = M in N is (λx. N) M; expansion preserves
        # normal forms, and ML-typability matches expansion typability.
        term = parse(r"let f = \x. x in f f")
        assert typable(expand_lets(term))


class TestExpansionAgreement:
    @given(untyped_terms(max_depth=4))
    @settings(max_examples=60, deadline=None)
    def test_ml_typability_equals_expansion_typability(self, term):
        assert ml_typable(term) == ml_typable_by_expansion(term)

    def test_unused_let_binding_still_checked(self):
        # The (Let) rule's left premise requires E typable even when x is
        # unused in B.
        term = parse(r"let x = (\f. f f) in o1")
        assert not ml_typable(term)
        assert not ml_typable_by_expansion(term)


class TestSchemes:
    def test_scheme_rendering(self):
        scheme = TypeScheme(("a",), Arrow(TypeVar("a"), TypeVar("a")))
        assert "forall a" in str(scheme)

    def test_let_schemes_recorded(self):
        result = ml_infer(parse(r"let f = \x. x in f o1"))
        assert any(
            scheme.quantified for scheme in result.let_schemes.values()
        )

    def test_env_schemes_enable_polymorphic_assumptions(self):
        scheme = TypeScheme(
            ("?a",), relation_type(1, TypeVar("?a"))
        )
        # R used at two different accumulator instances (order 0 and
        # order 1) — exactly the MLI= typing device of Definition 3.8.
        term = parse(r"\c. \n. R (\x. \t. c x t) (R (\x. \f. f) (\u. u) n)")
        try:
            ml_infer(term, env_schemes={"R": scheme})
        except TypeInferenceError as exc:  # pragma: no cover
            pytest.fail(f"polymorphic assumption rejected: {exc}")

    def test_monomorphic_env_rejects_the_same(self):
        term = parse(r"\c. \n. R (\x. \t. c x t) (R (\x. \f. f) (\u. u) n)")
        with pytest.raises(TypeInferenceError):
            ml_infer(term, env={"R": relation_type(1, TypeVar("?mono"))})


class TestMLOrders:
    def test_ml_term_order(self):
        # The term's *type* is o (order 0); the derivation mentions the
        # order-1 identity.
        assert ml_term_order(parse(r"let f = \x. x in f o1")) == 0
        result = ml_infer(parse(r"let f = \x. x in f o1"))
        assert result.derivation_order() == 1

    def test_order_bound(self):
        ml_check_order_bound(parse(r"let f = \x. x in f o1"), 1)
        with pytest.raises(OrderBoundError):
            ml_check_order_bound(
                parse(r"let t = \s. \z. s (s z) in t"), 1
            )

    def test_principal_type(self):
        type_ = ml_principal_type(parse(r"let f = \x. x in f f"))
        assert isinstance(type_, Arrow)
