"""Tests for the NBE normalizer: agreement with the small-step engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.encode import encode_relation
from repro.db.generators import random_relation
from repro.lam.alpha import alpha_equal
from repro.lam.combinators import (
    add_term,
    boolean_list,
    church_numeral,
    length_term,
    mul_term,
    numeral_value,
    parity_term,
)
from repro.lam.nbe import nbe_normalize
from repro.lam.parser import parse
from repro.lam.reduce import Strategy, is_normal_form, normalize
from repro.lam.terms import Const, Var, app


class TestAgreementWithSmallStep:
    @pytest.mark.parametrize(
        "source",
        [
            r"(\x. x) o1",
            r"(\x. \y. x) o1 o2",
            r"(\f. f (f o1)) (\x. x)",
            "Eq o1 o1 a b",
            "Eq o1 o2 a b",
            r"let f = \x. x in f f",
            r"\z. (\x. x) z",
            r"(\x. \y. y x) o1 (\w. Eq w o1)",
        ],
    )
    def test_same_normal_form(self, source):
        term = parse(source)
        assert alpha_equal(
            nbe_normalize(term), normalize(term).term
        )

    @given(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_arithmetic_agreement(self, m, n):
        term = app(add_term(), church_numeral(m), church_numeral(n))
        assert alpha_equal(
            nbe_normalize(term), normalize(term).term
        )
        term = app(mul_term(), church_numeral(m), church_numeral(n))
        assert numeral_value(nbe_normalize(term)) == m * n

    @given(st.lists(st.booleans(), max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_list_iteration_agreement(self, values):
        for fn in (parity_term(), length_term()):
            term = app(fn, boolean_list(values))
            assert alpha_equal(
                nbe_normalize(term), normalize(term).term
            )


class TestNBEProperties:
    def test_result_is_normal_form(self):
        term = parse(r"(\f. \x. f (f x)) (\y. Eq y o1 o2 o3) o1")
        assert is_normal_form(nbe_normalize(term))

    def test_stuck_terms_preserved(self):
        term = parse("f (Eq x o1) o2")
        assert alpha_equal(nbe_normalize(term), term)

    def test_free_variables_kept(self):
        term = parse(r"(\x. y) o1")
        assert nbe_normalize(term) == Var("y")

    def test_readback_avoids_free_variable_capture(self):
        # A free variable named like a readback binder.
        term = parse(r"(\x. \q. v0 x) o1")
        result = nbe_normalize(term)
        from repro.lam.terms import free_vars

        assert "v0" in free_vars(result)

    def test_delta_under_binder(self):
        term = parse(r"\x. Eq o1 o1 x o2")
        assert alpha_equal(nbe_normalize(term), parse(r"\x. x"))

    def test_sharing_beats_smallstep_on_iterated_lists(self):
        # The same relation folded twice: NBE shares the encoding value.
        rel = random_relation(2, 6, seed=2)
        term = app(
            parse(r"\R. \c. \n. R c (R c n)"), encode_relation(rel)
        )
        assert alpha_equal(
            nbe_normalize(term), normalize(term).term
        )

    def test_lets_are_reduced(self):
        term = parse("let x = o1 in Eq x o1 a b")
        assert nbe_normalize(term) == Var("a")

    def test_eta_is_not_performed(self):
        term = parse(r"\x. f x")
        assert alpha_equal(nbe_normalize(term), term)
