"""Unit tests for the observability layer: metrics, tracing, profiler."""

from __future__ import annotations

import json

import pytest

from repro.errors import FuelExhausted
from repro.lam.nbe import nbe_normalize_counted
from repro.lam.parser import parse
from repro.lam.reduce import Strategy, normalize
from repro.obs.metrics import (
    CORE_METRIC_NAMES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    install_core_metrics,
    quantile,
)
from repro.obs.profiler import ProfileCollector, ReductionProfile, bound_ratio
from repro.obs.tracing import (
    NOOP_SPAN,
    JsonlExporter,
    RingBufferExporter,
    Tracer,
    current_span,
    render_span_tree,
)


# ---------------------------------------------------------------------------
# quantile
# ---------------------------------------------------------------------------

class TestQuantile:
    def test_empty_list_is_zero(self):
        assert quantile([], 0.5) == 0.0
        assert quantile([], 0.95) == 0.0

    def test_singleton_is_its_element_for_any_q(self):
        for q in (0.0, 0.5, 0.95, 1.0):
            assert quantile([7.0], q) == 7.0

    def test_endpoints_are_min_and_max(self):
        values = [1.0, 2.0, 5.0, 9.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 9.0

    def test_linear_interpolation(self):
        # R-7 / numpy 'linear': h = q * (n - 1).
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert quantile([0.0, 10.0], 0.25) == 2.5
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_q_is_clamped(self):
        assert quantile([1.0, 2.0], -1.0) == 1.0
        assert quantile([1.0, 2.0], 2.0) == 2.0


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_inc_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", labels=("status",))
        counter.inc(status="ok")
        counter.inc(2, status="ok")
        counter.inc(status="error")
        assert counter.value(status="ok") == 3
        assert counter.value(status="error") == 1
        assert counter.value(status="missing") == 0
        assert counter.total() == 4
        assert dict(
            (labels["status"], value) for labels, value in counter.items()
        ) == {"ok": 3, "error": 1}

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_rejects_wrong_labels(self):
        counter = MetricsRegistry().counter("c_total", labels=("status",))
        with pytest.raises(ValueError):
            counter.inc(engine="nbe")
        with pytest.raises(ValueError):
            counter.inc()

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        assert gauge.value() is None
        gauge.set(4.5)
        gauge.inc(0.5)
        gauge.dec(2.0)
        assert gauge.value() == 3.0

    def test_histogram_snapshot_is_cumulative(self):
        hist = MetricsRegistry().histogram(
            "h_ms", buckets=(1, 10, 100)
        )
        for value in (0.5, 5, 5, 50, 5000):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(5060.5)
        cum = {bound: c for bound, c in snap["buckets"]}
        assert cum[1.0] == 1
        assert cum[10.0] == 3
        assert cum[100.0] == 4
        assert cum[float("inf")] == 5

    def test_histogram_quantile_estimate(self):
        hist = MetricsRegistry().histogram("h_ms", buckets=(10, 20, 40))
        for _ in range(10):
            hist.observe(15)  # all in the (10, 20] bucket
        estimate = hist.quantile(0.5)
        assert 10 <= estimate <= 20
        assert hist.quantile(0.0) == pytest.approx(10.0)

    def test_histogram_empty_quantile(self):
        hist = MetricsRegistry().histogram("h_ms", buckets=(10,))
        assert hist.quantile(0.5) == 0.0

    def test_registry_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", labels=("status",))
        again = registry.counter("c_total", labels=("status",))
        assert first is again

    def test_registry_rejects_conflicting_reregistration(self):
        registry = MetricsRegistry()
        registry.counter("m", labels=("status",))
        with pytest.raises(ValueError):
            registry.gauge("m")
        with pytest.raises(ValueError):
            registry.counter("m", labels=("engine",))

    def test_as_dict_shape_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter", labels=("status",)).inc(
            status="ok"
        )
        registry.histogram("h_ms", buckets=(1, 10)).observe(3)
        payload = json.loads(json.dumps(registry.as_dict()))
        by_name = {m["name"]: m for m in payload["metrics"]}
        assert by_name["c_total"]["type"] == "counter"
        assert by_name["c_total"]["values"] == [
            {"labels": {"status": "ok"}, "value": 1}
        ]
        buckets = by_name["h_ms"]["values"][0]["buckets"]
        assert buckets[-1][0] == "+Inf"

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter(
            "req_total", "requests", labels=("status",)
        ).inc(status="ok")
        registry.histogram("lat_ms", buckets=(1,)).observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE req_total counter" in text
        assert 'req_total{status="ok"} 1' in text
        assert "# TYPE lat_ms histogram" in text
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="+Inf"} 1' in text
        assert "lat_ms_count 1" in text

    def test_install_core_metrics_covers_documented_names(self):
        registry = MetricsRegistry()
        handles = install_core_metrics(registry)
        names = {metric.name for metric in registry.metrics()}
        assert set(CORE_METRIC_NAMES) <= names
        # Idempotent: a second install returns the same instances.
        again = install_core_metrics(registry)
        assert all(handles[k] is again[k] for k in handles)

    def test_core_metrics_export_before_traffic(self):
        registry = MetricsRegistry()
        install_core_metrics(registry)
        exported = {m["name"] for m in registry.as_dict()["metrics"]}
        assert set(CORE_METRIC_NAMES) <= exported


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------

class TestTracing:
    def test_disabled_tracer_returns_shared_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("query", key="value")
        assert span is NOOP_SPAN
        with span as inner:
            inner.set_attr("a", 1)
            inner.set_status("error")

    def test_spans_nest_and_export(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        with tracer.span("query", query="q") as root:
            with tracer.span("resolve") as child:
                assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id
                assert current_span() is child
            assert current_span() is root
        assert current_span() is None
        spans = ring.spans()
        assert [s.name for s in spans] == ["resolve", "query"]
        assert all(s.duration_ms is not None for s in spans)
        assert not tracer.open_spans()

    def test_exception_closes_span_with_error_status(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        with pytest.raises(RuntimeError):
            with tracer.span("query"):
                raise RuntimeError("boom")
        (span,) = ring.spans()
        assert span.status == "error"
        assert "boom" in span.attrs["error"]
        assert not tracer.open_spans()

    def test_explicit_status_survives_exception(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        with pytest.raises(FuelExhausted):
            with tracer.span("query") as span:
                span.set_status("fuel_exhausted")
                raise FuelExhausted(3)
        (span,) = ring.spans()
        assert span.status == "fuel_exhausted"

    def test_ring_buffer_bounds_retention(self):
        ring = RingBufferExporter(capacity=2)
        tracer = Tracer(exporters=[ring])
        for index in range(4):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in ring.spans()] == ["s2", "s3"]
        assert len(ring) == 2

    def test_jsonl_exporter_writes_one_object_per_line(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = JsonlExporter(str(path))
        tracer = Tracer(exporters=[exporter])
        with tracer.span("query", query="q"):
            with tracer.span("evaluate"):
                pass
        exporter.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert {r["name"] for r in records} == {"query", "evaluate"}
        assert records[0]["trace_id"] == records[1]["trace_id"]

    def test_render_span_tree(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        with tracer.span("query", query="q"):
            with tracer.span("resolve"):
                pass
            with tracer.span("evaluate", engine="nbe"):
                pass
        text = render_span_tree(ring.spans())
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert "query=q" in lines[0]
        assert any(line.startswith("├─ resolve") for line in lines)
        assert any(line.startswith("└─ evaluate") for line in lines)
        assert "engine=nbe" in text

    def test_render_promotes_orphans(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=[ring])
        with tracer.span("query"):
            with tracer.span("evaluate"):
                pass
        # Render only the child (as if the parent was evicted from the
        # ring): the orphan must be promoted to a root, not dropped.
        orphans = [s for s in ring.spans() if s.name == "evaluate"]
        text = render_span_tree(orphans)
        assert text.startswith("evaluate")


# ---------------------------------------------------------------------------
# profiler + engine observers
# ---------------------------------------------------------------------------

class TestProfiler:
    def test_collector_merges_breakdowns(self):
        collector = ProfileCollector()
        collector({"steps": 3, "beta": 2, "delta": 1, "max_depth": 2})
        collector({"steps": 5, "beta": 5, "quote": 4, "max_depth": 1})
        profile = collector.profile
        assert profile.steps == 8
        assert profile.beta == 7
        assert profile.delta == 1
        assert profile.quote == 4
        assert profile.max_depth == 2
        assert profile.events == 2
        assert profile.as_dict()["steps"] == 8

    def test_bound_ratio(self):
        assert bound_ratio(50, 100) == 0.5
        assert bound_ratio(None, 100) is None
        assert bound_ratio(50, None) is None
        assert bound_ratio(50, 0) is None

    def test_profile_defaults(self):
        profile = ReductionProfile()
        assert profile.as_dict() == {
            "steps": 0, "beta": 0, "delta": 0, "let": 0,
            "quote": 0, "max_depth": 0, "events": 0,
        }


class TestEngineObservers:
    TERM = r"(\x. \y. x) a b"

    def test_nbe_observer_breakdown_partitions_steps(self):
        term = parse(self.TERM)
        collector = ProfileCollector()
        normal, steps = nbe_normalize_counted(term, observer=collector)
        profile = collector.profile
        assert profile.steps == steps > 0
        assert profile.beta + profile.delta + profile.let == profile.steps
        assert profile.events == 1

    def test_nbe_step_total_unchanged_by_observer(self):
        term = parse(r"(\f. \x. f (f x)) (\y. y) a")
        _, plain = nbe_normalize_counted(term)
        _, observed = nbe_normalize_counted(
            term, observer=ProfileCollector()
        )
        assert plain == observed

    def test_nbe_observer_fires_on_fuel_exhaustion(self):
        term = parse(r"(\f. \x. f (f (f x))) (\y. y) a")
        collector = ProfileCollector()
        with pytest.raises(FuelExhausted):
            nbe_normalize_counted(term, fuel=2, observer=collector)
        assert collector.profile.steps == 3  # the overflowing tick included
        assert collector.profile.events == 1

    def test_nbe_delta_steps_attributed(self):
        # o-prefixed names parse as constants, so Eq collapses (delta).
        term = parse(r"Eq o1 o1 o2 o3")
        collector = ProfileCollector()
        nbe_normalize_counted(term, observer=collector)
        assert collector.profile.delta >= 1

    def test_smallstep_observer_matches_result_counts(self):
        term = parse(r"let id = \x. x in id (Eq a a b c)")
        collector = ProfileCollector()
        outcome = normalize(
            term, Strategy.NORMAL_ORDER, observer=collector
        )
        profile = collector.profile
        assert profile.steps == outcome.steps
        assert profile.beta == outcome.beta_steps
        assert profile.delta == outcome.delta_steps
        assert profile.let == outcome.let_steps

    def test_smallstep_observer_fires_on_fuel_exhaustion(self):
        term = parse(r"(\x. x x) (\x. x x)")
        collector = ProfileCollector()
        with pytest.raises(FuelExhausted):
            normalize(
                term, Strategy.NORMAL_ORDER, fuel=5, observer=collector
            )
        # Partial counts are reported (the overflowing step included).
        assert collector.profile.steps >= 5
        assert collector.profile.events == 1


# ---------------------------------------------------------------------------
# Runtime info and the HTTP metric family (served at /health and /metrics)
# ---------------------------------------------------------------------------

class TestRuntimeInfo:
    def test_uptime_is_monotonic_and_positive(self):
        import time

        from repro.obs import uptime_s

        first = uptime_s()
        time.sleep(0.01)
        second = uptime_s()
        assert 0 <= first < second

    def test_build_info_identifies_the_process(self):
        import os

        from repro import __version__
        from repro.obs import build_info

        info = build_info()
        assert info["version"] == __version__
        assert info["python"].count(".") >= 2
        assert info["pid"] == os.getpid()
        assert info["implementation"] and info["platform"]

    def test_runtime_info_shape(self):
        from repro.obs import runtime_info

        info = runtime_info()
        assert set(info) == {"build", "uptime_s", "started_unix"}
        assert info["uptime_s"] >= 0
        assert info["started_unix"] > 0


class TestHttpMetricFamily:
    def test_names_are_stable_and_prefixed(self):
        from repro.obs import HTTP_METRIC_NAMES

        assert all(n.startswith("repro_http_") for n in HTTP_METRIC_NAMES)
        assert len(set(HTTP_METRIC_NAMES)) == len(HTTP_METRIC_NAMES)

    def test_install_is_idempotent_and_renders_every_name(self):
        from repro.obs import HTTP_METRIC_NAMES, install_http_metrics

        registry = MetricsRegistry()
        handles = install_http_metrics(registry)
        again = install_http_metrics(registry)
        assert handles.keys() == again.keys()
        for key in handles:
            assert handles[key] is again[key]
        text = registry.render_prometheus()
        for name in HTTP_METRIC_NAMES:
            assert name in text

    def test_handles_cover_the_documented_family(self):
        from repro.obs import HTTP_METRIC_NAMES, install_http_metrics

        handles = install_http_metrics(MetricsRegistry())
        assert {m.name for m in handles.values()} == set(HTTP_METRIC_NAMES)
