"""Tests for the flight recorder, cross-process trace propagation, and
EXPLAIN ANALYZE reports (tentpole: end-to-end flight recorder)."""

import json

import pytest

from repro.db.generators import random_database
from repro.lam.parser import parse
from repro.obs import (
    FlightRecorder,
    RingBufferExporter,
    SpanRecorder,
    Tracer,
    format_traceparent,
    make_trace_id,
    parse_traceparent,
)
from repro.queries.language import QueryArity
from repro.service import Catalog, QueryRequest, QueryService

SWAP = r"\R. \c. \n. R (\x y T. c y x T) n"
SIG1 = QueryArity((2,), 2)


def make_catalog():
    catalog = Catalog()
    catalog.register_database(
        "main", random_database([2], [16], universe_size=6, seed=7)
    )
    catalog.register_query("swap", parse(SWAP), signature=SIG1)
    return catalog


@pytest.fixture
def traced_service():
    ring = RingBufferExporter()
    tracer = Tracer(exporters=[ring], enabled=True)
    service = QueryService(make_catalog(), tracer=tracer)
    flight = service.enable_flight()
    yield service, flight, ring
    service.close()


# ---------------------------------------------------------------------------
# traceparent helpers
# ---------------------------------------------------------------------------

class TestTraceparent:
    def test_round_trip(self):
        trace = make_trace_id()
        assert len(trace) == 32
        header = format_traceparent(trace, "00f067aa0ba902b7")
        assert header == f"00-{trace}-00f067aa0ba902b7-01"
        assert parse_traceparent(header) == trace

    def test_malformed_yields_none(self):
        assert parse_traceparent(None) is None
        assert parse_traceparent("") is None
        assert parse_traceparent("nonsense") is None
        assert parse_traceparent("00-zzzz-span-01") is None

    def test_all_zero_trace_rejected(self):
        assert parse_traceparent("00-" + "0" * 32 + "-aa-01") is None

    def test_bare_trace_id_accepted(self):
        # Lenient: "00-<trace>" without span/flags still parses.
        assert parse_traceparent("00-abc123") == "abc123"


# ---------------------------------------------------------------------------
# FlightRecorder admission and retention
# ---------------------------------------------------------------------------

def report(trace_id, *, status="ok", explain=False, bound_ratio=None,
           wall_ms=1.0):
    observed = {}
    if bound_ratio is not None:
        observed["bound_ratio"] = bound_ratio
    return {
        "trace_id": trace_id,
        "status": status,
        "explain_requested": explain,
        "observed": observed,
        "wall_ms": wall_ms,
    }


class TestFlightRecorder:
    def test_explain_always_admitted(self):
        flight = FlightRecorder(slowest=0)
        assert flight.record(report("t1", explain=True))
        assert flight.lookup("t1")["reasons"] == ["explain"]

    def test_error_admitted(self):
        flight = FlightRecorder(slowest=0)
        assert flight.record(report("t1", status="error"))
        assert "error" in flight.lookup("t1")["reasons"]

    def test_bound_breach_admitted(self):
        flight = FlightRecorder(slowest=0, bound_ratio_threshold=0.9)
        assert flight.record(report("hot", bound_ratio=0.95))
        assert not flight.record(report("cold", bound_ratio=0.5))
        assert "bound_ratio" in flight.lookup("hot")["reasons"]
        assert flight.lookup("cold") is None

    def test_slowest_cohort(self):
        flight = FlightRecorder(slowest=2)
        assert flight.record(report("a", wall_ms=10.0))
        assert flight.record(report("b", wall_ms=20.0))
        # Faster than both of the retained slowest: rejected.
        assert not flight.record(report("c", wall_ms=1.0))
        # Slower than the cohort floor: admitted.
        assert flight.record(report("d", wall_ms=15.0))
        assert flight.snapshot()["rejected_total"] == 1

    def test_capacity_evicts_lru(self):
        flight = FlightRecorder(2, slowest=0)
        for name in ("t1", "t2", "t3"):
            flight.record(report(name, explain=True))
        assert flight.lookup("t1") is None
        assert flight.lookup("t2") is not None
        assert flight.lookup("t3") is not None
        assert len(flight) == 2

    def test_pending_spans_attach_to_report(self):
        flight = FlightRecorder(slowest=0)
        recorder = SpanRecorder("trace-x", prefix="w")
        with recorder.span("worker.task", shard=0):
            pass
        tracer = Tracer(exporters=[flight], enabled=True)
        tracer.ingest(recorder.spans())
        assert flight.record(report("trace-x", explain=True))
        spans = flight.lookup("trace-x")["spans"]
        assert [s["name"] for s in spans] == ["worker.task"]
        assert flight.snapshot()["pending_traces"] == 0

    def test_rejected_report_discards_pending_spans(self):
        flight = FlightRecorder(slowest=0)
        recorder = SpanRecorder("trace-y")
        with recorder.span("worker.task"):
            pass
        tracer = Tracer(exporters=[flight], enabled=True)
        tracer.ingest(recorder.spans())
        assert not flight.record(report("trace-y"))
        assert flight.snapshot()["pending_traces"] == 0

    def test_records_listing_newest_first(self):
        flight = FlightRecorder(slowest=0)
        flight.record(report("t1", explain=True))
        flight.record(report("t2", explain=True))
        listed = flight.records()
        assert [r["trace_id"] for r in listed] == ["t2", "t1"]
        assert [r["trace_id"] for r in flight.records(limit=1)] == ["t2"]
        assert flight.records(trace_id="t1")[0]["trace_id"] == "t1"
        assert flight.records(trace_id="zzz") == []


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE through the service
# ---------------------------------------------------------------------------

class TestExplainReport:
    def test_report_joins_static_and_observed(self, traced_service):
        service, flight, _ = traced_service
        response = service.execute(
            QueryRequest(query="swap", database="main", explain=True)
        )
        assert response.ok
        assert response.trace_id
        report = response.explain
        assert report is not None
        static = report["static"]
        assert static["query"] == "swap"
        assert static["kind"] == "term"
        assert static["order"] == 3  # TLI=0 query terms live at order 3
        assert static["signature"] == "(2; 2)"
        assert static["cost"] is not None
        assert static["static_bound"] > 0
        observed = report["observed"]
        assert observed["engine"] == response.engine
        assert observed["cache_hit"] is False
        assert observed["steps"] == response.steps
        # The response's explain copy is the retained flight record:
        # it carries the span tree and the admission reasons.
        assert "explain" in report["reasons"]
        assert any(s["name"] == "query" for s in report["spans"])
        assert report == flight.lookup(response.trace_id)
        # The whole report must survive JSON round-tripping (wire shape).
        assert json.loads(json.dumps(report)) == report

    def test_caller_trace_id_adopted(self, traced_service):
        service, flight, _ = traced_service
        trace = "feedfacecafebeef" * 2
        response = service.execute(
            QueryRequest(
                query="swap", database="main", explain=True, trace_id=trace
            )
        )
        assert response.trace_id == trace
        assert flight.lookup(trace) is not None

    def test_no_explain_no_report_on_response(self, traced_service):
        service, _, _ = traced_service
        response = service.execute(
            QueryRequest(query="swap", database="main")
        )
        assert response.ok
        assert response.explain is None
        assert response.trace_id  # propagation is unconditional

    def test_exemplar_links_latency_to_trace(self, traced_service):
        service, _, _ = traced_service
        response = service.execute(
            QueryRequest(query="swap", database="main", explain=True)
        )
        latency = service.registry.get("repro_request_latency_ms")
        exemplars = latency.snapshot().get("exemplars") or {}
        assert any(
            ex["trace_id"] == response.trace_id
            for ex in exemplars.values()
        )


# ---------------------------------------------------------------------------
# Cross-process propagation through the shard pool (satellite)
# ---------------------------------------------------------------------------

def span_names(spans):
    return [s["name"] for s in spans]


class TestShardedTracePropagation:
    def test_worker_spans_carry_coordinator_trace(self, traced_service):
        service, flight, _ = traced_service
        trace = make_trace_id()
        response = service.execute(
            QueryRequest(
                query="swap", database="main", shards=2,
                explain=True, trace_id=trace,
            )
        )
        assert response.ok
        record = flight.lookup(trace)
        assert record is not None
        spans = record["spans"]
        assert all(s["trace_id"] == trace for s in spans)
        workers = [s for s in spans if s["name"] == "worker.task"]
        assert sorted(w["attrs"]["shard"] for w in workers) == [0, 1]
        evaluate = next(
            s for s in spans if s["name"] == "shard.evaluate"
        )
        assert all(w["parent_id"] == evaluate["span_id"] for w in workers)
        # Each worker.task nests a snapshot span and an evaluate span.
        for worker in workers:
            children = {
                s["name"] for s in spans
                if s["parent_id"] == worker["span_id"]
            }
            assert children == {"worker.snapshot", "worker.evaluate"}
        # Per-shard fuel-vs-steps rows made it into the observed side.
        rows = record["observed"]["shards"]
        assert sorted(row["shard"] for row in rows) == [0, 1]
        assert all(row["steps"] >= 0 for row in rows)
        assert all(row["fuel"] is None or row["fuel"] > 0 for row in rows)

    def test_respawn_span_survives_worker_crash(self, traced_service):
        """A crashed worker's retry must surface as a shard.respawn span
        under the same trace, not as a silently dropped subtree."""
        service, flight, _ = traced_service
        warm = service.execute(
            QueryRequest(query="swap", database="main", shards=2)
        )
        assert warm.ok
        pool = service._shard_pool
        assert pool is not None
        pool.inject_crash(0)
        service.cache.clear()
        trace = make_trace_id()
        response = service.execute(
            QueryRequest(
                query="swap", database="main", shards=2,
                explain=True, trace_id=trace,
            )
        )
        assert response.ok
        record = flight.lookup(trace)
        assert record is not None
        spans = record["spans"]
        respawns = [s for s in spans if s["name"] == "shard.respawn"]
        assert respawns, f"no respawn span in {span_names(spans)}"
        assert all(s["trace_id"] == trace for s in respawns)
        assert all(s["attrs"]["retries"] >= 1 for s in respawns)
        # The retried shard still contributed worker spans.
        workers = [s for s in spans if s["name"] == "worker.task"]
        assert sorted({w["attrs"]["shard"] for w in workers}) == [0, 1]
