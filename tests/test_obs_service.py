"""Integration tests: the service runtime's tracing, metrics, and profile.

The load-bearing scenario is satellite-free concurrency: N identical
concurrent requests must produce exactly one evaluation span (single
flight), N-1 cache-wait spans, and registry counters that sum to N.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.lam.parser import parse
from repro.obs.tracing import RingBufferExporter, Tracer
from repro.queries.fixpoint import transitive_closure_query
from repro.queries.language import QueryArity
from repro.service import QueryRequest, QueryService
import repro.service.runtime as runtime_module


SWAP = r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n"


def traced_service(**kwargs):
    ring = RingBufferExporter()
    tracer = Tracer(exporters=[ring])
    service = QueryService(tracer=tracer, **kwargs)
    return service, tracer, ring


def register_swap(service, db):
    service.catalog.register_database("db", db)
    service.catalog.register_query(
        "swap", parse(SWAP), signature=QueryArity((2, 2), 2)
    )


class TestLifecycleSpans:
    def test_miss_then_hit_span_shapes(self, small_db):
        service, tracer, ring = traced_service()
        register_swap(service, small_db)
        request = QueryRequest(query="swap", database="db")

        miss = service.execute(request)
        miss_spans = {s.name for s in ring.spans()}
        assert miss_spans == {
            "query", "resolve", "cache.lookup", "fuel", "evaluate", "decode",
        }
        evaluate = next(s for s in ring.spans() if s.name == "evaluate")
        # swap compiles, so the miss runs on the set-backed engine:
        # steps are executor operations, not reductions.
        assert evaluate.attrs["engine"] == "ra"
        assert evaluate.attrs["steps"] == miss.steps > 0
        assert evaluate.attrs["beta"] == 0
        root = next(s for s in ring.spans() if s.name == "query")
        assert root.attrs["cache_hit"] is False
        assert root.attrs["status"] == "ok"

        ring.clear()
        hit = service.execute(request)
        assert hit.cache_hit
        hit_spans = {s.name for s in ring.spans()}
        assert hit_spans == {"query", "resolve", "cache.lookup"}
        assert hit.profile == miss.profile  # replayed verbatim
        assert not tracer.open_spans()

    def test_profile_carries_static_bound_and_ratio(self, small_db):
        service, _, _ = traced_service()
        register_swap(service, small_db)
        response = service.execute(
            QueryRequest(query="swap", database="db")
        )
        profile = response.profile
        assert profile is not None
        assert profile["steps"] == response.steps
        assert profile["static_bound"] is not None
        assert profile["bound_ratio"] == pytest.approx(
            response.steps / profile["static_bound"], abs=5e-7
        )
        assert profile["bound_ratio"] <= 1.0
        gauge = service.registry.get("repro_steps_bound_ratio")
        assert gauge.value(query="swap") == pytest.approx(
            response.steps / profile["static_bound"]
        )

    def test_fixpoint_profile_spans(self, tiny_graph):
        from repro.db.relations import Database

        service, tracer, ring = traced_service()
        service.catalog.register_database(
            "g", Database.of({"E": tiny_graph})
        )
        service.catalog.register_query("tc", transitive_closure_query("E"))
        response = service.execute(QueryRequest(query="tc", database="g"))
        assert response.ok
        assert response.steps == response.profile["steps"] > 0
        evaluate = next(s for s in ring.spans() if s.name == "evaluate")
        assert evaluate.attrs["engine"] == "fixpoint"
        assert evaluate.attrs["stages"] == response.stages
        # One engine invocation merged per stage normalization.
        assert response.profile["events"] > 1
        assert not tracer.open_spans()


class TestSingleFlight:
    def test_n_concurrent_identical_requests(self, small_db, monkeypatch):
        service, tracer, ring = traced_service()
        register_swap(service, small_db)

        release = threading.Event()
        real_evaluate = runtime_module.evaluate_term_query

        def gated_evaluate(*args, **kwargs):
            assert release.wait(timeout=10), "test never released the gate"
            return real_evaluate(*args, **kwargs)

        monkeypatch.setattr(
            runtime_module, "evaluate_term_query", gated_evaluate
        )

        n = 4
        pool = ThreadPoolExecutor(max_workers=n)
        try:
            futures = [
                pool.submit(
                    service.execute,
                    QueryRequest(query="swap", database="db"),
                )
                for _ in range(n)
            ]
            # The leader is parked inside the gated evaluation; wait until
            # every follower is visibly blocked in its cache.wait span,
            # then release.  This makes the overlap deterministic.
            deadline = time.time() + 10
            while time.time() < deadline:
                waiting = [
                    s for s in tracer.open_spans() if s.name == "cache.wait"
                ]
                if len(waiting) == n - 1:
                    break
                time.sleep(0.002)
            else:
                pytest.fail("followers never reached cache.wait")
            release.set()
            responses = [f.result(timeout=10) for f in futures]
        finally:
            release.set()
            pool.shutdown(wait=True)

        assert all(r.ok for r in responses)
        assert sum(1 for r in responses if not r.cache_hit) == 1
        assert sum(1 for r in responses if r.cache_hit) == n - 1
        # Every response carries the single evaluation's profile.
        profiles = {tuple(sorted(r.profile.items())) for r in responses}
        assert len(profiles) == 1

        spans = ring.spans()
        assert len([s for s in spans if s.name == "evaluate"]) == 1
        assert len([s for s in spans if s.name == "cache.wait"]) == n - 1
        assert len([s for s in spans if s.name == "query"]) == n
        assert not tracer.open_spans()

        registry = service.registry
        statuses = dict(
            (labels["status"], value)
            for labels, value in registry.get("repro_requests_total").items()
        )
        assert statuses == {"ok": n}
        assert registry.get("repro_cache_hits_total").value() == n - 1
        assert registry.get("repro_cache_misses_total").value() == 1
        assert (
            registry.get("repro_cache_inflight_waits_total").value() == n - 1
        )
        cache_stats = service.cache.stats()
        assert cache_stats.inflight_waits == n - 1
        assert cache_stats.hit_rate == pytest.approx((n - 1) / n)


class TestDegradedRequests:
    def test_fuel_exhaustion_closes_spans_and_counts(self, small_db):
        service, tracer, ring = traced_service()
        register_swap(service, small_db)
        response = service.execute(
            # Fuel applies to reduction engines; pin "nbe" (the compiled
            # engine never spends fuel).
            QueryRequest(query="swap", database="db", fuel=2, engine="nbe")
        )
        assert response.status == "fuel_exhausted"
        # The partial profile still surfaces (fuel=2: the overflowing
        # third tick is counted, matching FuelExhausted.steps).
        assert response.profile["steps"] == response.steps == 3
        assert not tracer.open_spans()
        evaluate = next(s for s in ring.spans() if s.name == "evaluate")
        assert evaluate.status == "error"
        assert evaluate.attrs["steps"] == 3
        root = next(s for s in ring.spans() if s.name == "query")
        assert root.status == "fuel_exhausted"
        statuses = dict(
            (labels["status"], value)
            for labels, value in service.registry.get(
                "repro_requests_total"
            ).items()
        )
        assert statuses == {"fuel_exhausted": 1}

    def test_error_requests_close_spans_and_count(self, small_db):
        service, tracer, ring = traced_service()
        register_swap(service, small_db)
        response = service.execute(
            QueryRequest(query="no-such-query", database="db")
        )
        assert response.status == "error"
        assert not tracer.open_spans()
        root = next(s for s in ring.spans() if s.name == "query")
        assert root.status == "error"
        assert (
            service.registry.get("repro_requests_total").value(
                status="error"
            )
            == 1
        )

    def test_timeout_counts_and_background_spans_drain(
        self, small_db, monkeypatch
    ):
        service, tracer, ring = traced_service()
        register_swap(service, small_db)
        real_evaluate = runtime_module.evaluate_term_query

        def slow_evaluate(*args, **kwargs):
            time.sleep(0.2)
            return real_evaluate(*args, **kwargs)

        monkeypatch.setattr(
            runtime_module, "evaluate_term_query", slow_evaluate
        )
        response = service.execute(
            QueryRequest(query="swap", database="db", timeout_s=0.01)
        )
        assert response.status == "timeout"
        assert (
            service.registry.get("repro_requests_total").value(
                status="timeout"
            )
            == 1
        )
        # The abandoned worker finishes its bounded budget in the
        # background; its spans must drain to zero, never leak.
        deadline = time.time() + 5
        while tracer.open_spans() and time.time() < deadline:
            time.sleep(0.01)
        assert not tracer.open_spans()


class TestSlowQueryLogging:
    def test_slow_queries_logged_and_counted(self, small_db, caplog):
        service, _, _ = traced_service(slow_query_ms=0.0)
        register_swap(service, small_db)
        with caplog.at_level(logging.WARNING, logger="repro.service.slow"):
            service.execute(QueryRequest(query="swap", database="db"))
        assert any(
            record.name == "repro.service.slow"
            and "slow query" in record.message
            for record in caplog.records
        )
        record = next(
            r for r in caplog.records if r.name == "repro.service.slow"
        )
        assert record.query == "swap"
        assert record.status == "ok"
        assert record.wall_ms >= 0.0
        assert (
            service.registry.get("repro_slow_queries_total").value() == 1
        )
        assert service.stats()["slow_queries"] == 1

    def test_threshold_filters(self, small_db, caplog):
        service, _, _ = traced_service(slow_query_ms=60_000.0)
        register_swap(service, small_db)
        with caplog.at_level(logging.WARNING, logger="repro.service.slow"):
            service.execute(QueryRequest(query="swap", database="db"))
        assert not [
            r for r in caplog.records if r.name == "repro.service.slow"
        ]
        assert (
            service.registry.get("repro_slow_queries_total").value() == 0
        )


class TestStatsSurface:
    def test_stats_shape_preserved(self, small_db):
        service, _, _ = traced_service()
        register_swap(service, small_db)
        for _ in range(3):
            service.execute(QueryRequest(query="swap", database="db"))
        stats = service.stats()
        assert stats["requests"] == 3
        assert stats["statuses"] == {"ok": 3}
        assert stats["cache"]["hits"] == 2
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["hit_rate"] == pytest.approx(2 / 3, abs=1e-4)
        assert stats["latency_p50_ms"] >= 0.0

    def test_batch_stats_use_lookup_only_hit_rate(self, small_db):
        service, _, _ = traced_service()
        register_swap(service, small_db)
        result = service.execute_batch(
            [
                QueryRequest(query="swap", database="db"),
                QueryRequest(query="swap", database="db"),
                QueryRequest(query="no-such-query", database="db"),
            ]
        )
        stats = result.stats
        # The error response never reached the cache: 2 lookups, 1 hit.
        assert stats["statuses"] == {"ok": 2, "error": 1}
        assert stats["cache_hits"] + stats["cache_misses"] == 2
        assert stats["hit_rate"] == pytest.approx(
            stats["cache_hits"] / 2
        )

    def test_empty_batch_percentiles_are_zero(self):
        from repro.service.runtime import BatchResult

        stats = BatchResult(responses=[], wall_ms=0.0).stats
        assert stats["latency_p50_ms"] == 0.0
        assert stats["latency_p95_ms"] == 0.0
        assert stats["hit_rate"] == 0.0

    def test_engine_steps_counted_once_per_evaluation(self, small_db):
        service, _, _ = traced_service()
        register_swap(service, small_db)
        first = service.execute(QueryRequest(query="swap", database="db"))
        service.execute(QueryRequest(query="swap", database="db"))
        counter = service.registry.get("repro_engine_steps_total")
        # Cache hits replay results without engine work: no double count.
        assert counter.value(engine="ra") == first.steps
