"""Tests for the Section 4 / Appendix operator terms against the baseline
relational-algebra engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.decode import decode_relation
from repro.db.encode import encode_relation
from repro.db.generators import constant_universe, random_relation
from repro.lam.combinators import boolean_value
from repro.lam.nbe import nbe_normalize
from repro.lam.reduce import normalize
from repro.lam.terms import Const, app
from repro.queries import operators as ops
from repro.queries.language import QueryArity, recognize_tli
from repro.relalg.ast import (
    ColumnEqualsColumn,
    ColumnEqualsConst,
    CondAnd,
    CondNot,
    CondOr,
    CondTrue,
)
from repro.types.infer import infer


def reduce_to_relation(term, arity):
    return decode_relation(nbe_normalize(term), arity).relation


def consts(*names):
    return [Const(n) for n in names]


class TestEqualAndMember:
    @given(
        st.lists(st.sampled_from(constant_universe(3)), min_size=2, max_size=2),
        st.lists(st.sampled_from(constant_universe(3)), min_size=2, max_size=2),
    )
    @settings(max_examples=30, deadline=None)
    def test_equal_k(self, xs, ys):
        term = app(ops.equal_term(2), *consts(*xs), *consts(*ys))
        assert boolean_value(normalize(term).term) == (xs == ys)

    def test_equal_zero_arity(self):
        # Empty tuples are always equal.
        assert boolean_value(normalize(ops.equal_term(0)).term) is True

    def test_member(self):
        rel = random_relation(2, 4, seed=3)
        encoded = encode_relation(rel)
        inside = rel.tuples[0]
        outside = ("o9", "o9")
        for row, expected in ((inside, True), (outside, False)):
            term = app(ops.member_term(2), *consts(*row), encoded)
            assert boolean_value(normalize(term).term) is expected

    def test_member_of_empty(self):
        from repro.db.relations import Relation

        term = app(
            ops.member_term(1),
            Const("o1"),
            encode_relation(Relation.empty(1)),
        )
        assert boolean_value(normalize(term).term) is False


class TestOrderTerm:
    def test_weak_order_semantics(self):
        from repro.db.relations import Relation

        rel = Relation.from_tuples(1, [("o1",), ("o2",)])
        encoded = encode_relation(rel)

        def order_of(x, y):
            term = app(
                ops.order_term(1), Const(x), Const(y), encoded
            )
            return boolean_value(normalize(term).term)

        assert order_of("o1", "o2") is True
        assert order_of("o2", "o1") is False
        assert order_of("o1", "o1") is True   # first match wins
        assert order_of("o9", "o1") is False  # absent left
        assert order_of("o9", "o8") is False  # both absent


class TestSetOperators:
    @given(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_intersection_union_difference(self, n, m, seed):
        universe = constant_universe(3)
        left = random_relation(2, n, universe, seed=seed)
        right = random_relation(2, m, universe, seed=seed + 1)
        el, er = encode_relation(left), encode_relation(right)
        inter = reduce_to_relation(
            app(ops.intersection_term(2), el, er), 2
        )
        assert inter.as_set() == left.as_set() & right.as_set()
        union = reduce_to_relation(app(ops.union_term(2), el, er), 2)
        assert union.as_set() == left.as_set() | right.as_set()
        diff = reduce_to_relation(
            app(ops.difference_term(2), el, er), 2
        )
        assert diff.as_set() == left.as_set() - right.as_set()

    def test_intersection_preserves_left_order(self):
        from repro.db.relations import Relation

        left = Relation.from_tuples(1, [("o3",), ("o1",), ("o2",)])
        right = Relation.from_tuples(1, [("o2",), ("o3",)])
        result = reduce_to_relation(
            app(
                ops.intersection_term(1),
                encode_relation(left),
                encode_relation(right),
            ),
            1,
        )
        assert result.tuples == (("o3",), ("o2",))


class TestProductProjectSelect:
    def test_product(self):
        left = random_relation(1, 3, seed=4)
        right = random_relation(2, 2, seed=5)
        result = reduce_to_relation(
            app(
                ops.product_term(1, 2),
                encode_relation(left),
                encode_relation(right),
            ),
            3,
        )
        assert result.as_set() == {
            a + b for a in left.tuples for b in right.tuples
        }

    def test_projection_reorders_and_duplicates(self):
        from repro.db.relations import Relation

        rel = Relation.from_tuples(2, [("o1", "o2")])
        result = reduce_to_relation(
            app(ops.project_term(2, [1, 1, 0]), encode_relation(rel)),
            3,
        )
        assert result.tuples == (("o2", "o2", "o1"),)

    def test_projection_out_of_range(self):
        from repro.errors import QueryTermError

        with pytest.raises(QueryTermError):
            ops.project_term(2, [2])

    @pytest.mark.parametrize(
        "condition, predicate",
        [
            (CondTrue(), lambda r: True),
            (ColumnEqualsColumn(0, 1), lambda r: r[0] == r[1]),
            (ColumnEqualsConst(0, "o1"), lambda r: r[0] == "o1"),
            (
                CondAnd(
                    ColumnEqualsConst(0, "o1"),
                    ColumnEqualsColumn(0, 1),
                ),
                lambda r: r[0] == "o1" and r[0] == r[1],
            ),
            (
                CondOr(
                    ColumnEqualsConst(0, "o2"),
                    ColumnEqualsConst(1, "o1"),
                ),
                lambda r: r[0] == "o2" or r[1] == "o1",
            ),
            (
                CondNot(ColumnEqualsColumn(0, 1)),
                lambda r: r[0] != r[1],
            ),
        ],
    )
    def test_selection(self, condition, predicate):
        rel = random_relation(2, 6, constant_universe(3), seed=6)
        result = reduce_to_relation(
            app(ops.select_term(2, condition), encode_relation(rel)), 2
        )
        assert result.as_set() == {
            r for r in rel.tuples if predicate(r)
        }


class TestDistinctVariants:
    def test_distinct_projection_emits_each_value_once(self):
        from repro.db.relations import Relation

        rel = Relation.from_tuples(
            2, [("o1", "o2"), ("o1", "o3"), ("o2", "o1")]
        )
        result = decode_relation(
            nbe_normalize(
                app(
                    ops.distinct_projection_term(2, 0),
                    encode_relation(rel),
                )
            ),
            1,
        )
        assert not result.had_duplicates
        assert result.relation.tuples == (("o1",), ("o2",))

    def test_distinct_union(self):
        from repro.db.relations import Relation

        left = Relation.from_tuples(1, [("o1",), ("o2",)])
        right = Relation.from_tuples(1, [("o2",), ("o3",)])
        result = decode_relation(
            nbe_normalize(
                app(
                    ops.distinct_union_term(1),
                    encode_relation(left),
                    encode_relation(right),
                )
            ),
            1,
        )
        assert not result.had_duplicates
        assert result.relation.as_set() == {("o1",), ("o2",), ("o3",)}


class TestPrecedesRelation:
    def test_strict_order_pairs(self):
        from repro.db.relations import Relation

        rel = Relation.from_tuples(1, [("o2",), ("o3",), ("o1",)])
        result = reduce_to_relation(
            app(ops.precedes_relation_term(1), encode_relation(rel)), 2
        )
        assert result.as_set() == {
            ("o2", "o3"),
            ("o2", "o1"),
            ("o3", "o1"),
        }


class TestOperatorTyping:
    @pytest.mark.parametrize(
        "builder, arity_sig",
        [
            (lambda: ops.intersection_term(2), QueryArity((2, 2), 2)),
            (lambda: ops.union_term(2), QueryArity((2, 2), 2)),
            (lambda: ops.difference_term(2), QueryArity((2, 2), 2)),
            (lambda: ops.product_term(1, 2), QueryArity((1, 2), 3)),
            (
                lambda: ops.project_term(2, [0]),
                QueryArity((2,), 1),
            ),
            (
                lambda: ops.precedes_relation_term(1),
                QueryArity((1,), 2),
            ),
            (
                lambda: ops.distinct_projection_term(2, 1),
                QueryArity((2,), 1),
            ),
        ],
    )
    def test_operators_are_tli0_query_terms(self, builder, arity_sig):
        # "By inspection of its type, Intersection_k is a TLI=0 query term"
        # (Section 4) — and so is the rest of the library.
        recognition = recognize_tli(builder(), arity_sig)
        assert recognition.derivation_order <= 3

    def test_operators_are_simply_typable(self):
        for term in (
            ops.equal_term(3),
            ops.member_term(2),
            ops.order_term(2),
            ops.select_term(2, ColumnEqualsColumn(0, 1)),
        ):
            assert infer(term) is not None
