"""Tests for the concrete syntax: parser and pretty-printer."""

import pytest
from hypothesis import given

from repro.errors import ParseError
from repro.lam.alpha import alpha_equal
from repro.lam.parser import parse, tokenize
from repro.lam.pretty import pretty, pretty_compact
from repro.lam.terms import Abs, App, Const, EqConst, Let, Var, app, lam
from tests.conftest import untyped_terms


class TestParsing:
    def test_variable(self):
        assert parse("x") == Var("x")

    def test_constant_convention(self):
        assert parse("o1") == Const("o1")
        assert parse("o42") == Const("o42")

    def test_explicit_constants(self):
        assert parse("alice", constants=["alice"]) == Const("alice")
        assert parse("alice") == Var("alice")

    def test_eq_keyword(self):
        assert parse("Eq") == EqConst()

    def test_lambda_backslash_and_unicode(self):
        expected = Abs("x", Var("x"))
        assert parse(r"\x. x") == expected
        assert parse("λx. x") == expected

    def test_multi_binder(self):
        assert parse(r"\x y. x") == lam(["x", "y"], Var("x"))

    def test_application_left_assoc(self):
        assert parse("f a b") == app(Var("f"), Var("a"), Var("b"))

    def test_application_parens(self):
        assert parse("f (a b)") == App(
            Var("f"), App(Var("a"), Var("b"))
        )

    def test_lambda_body_extends_right(self):
        term = parse(r"\x. f x y")
        assert term == Abs("x", app(Var("f"), Var("x"), Var("y")))

    def test_let(self):
        term = parse(r"let x = \y. y in x x")
        assert term == Let(
            "x", Abs("y", Var("y")), App(Var("x"), Var("x"))
        )

    def test_nested_let(self):
        term = parse("let a = o1 in let b = o2 in Eq a b")
        assert isinstance(term, Let) and isinstance(term.body, Let)

    def test_annotation(self):
        term = parse(r"\x:o. x")
        from repro.types.types import O

        assert isinstance(term, Abs)
        assert term.annotation == O

    def test_arrow_annotation_right_assoc(self):
        term = parse(r"\f:o -> o -> g. f")
        from repro.types.types import Arrow, G, O

        assert term.annotation == Arrow(O, Arrow(O, G))

    def test_parenthesized_annotation(self):
        term = parse(r"\f:(o -> o) -> g. f")
        from repro.types.types import Arrow, G, O

        assert term.annotation == Arrow(Arrow(O, O), G)

    def test_primed_names(self):
        assert parse("x'") == Var("x'")


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "(x",
            "x)",
            r"\x",
            r"\x x",
            "let x = in y",
            "let x y in z",
            "x @ y",
            r"\. x",
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_error_carries_position(self):
        try:
            parse("f (a")
        except ParseError as exc:
            assert exc.position >= 0
        else:  # pragma: no cover
            raise AssertionError("expected ParseError")


class TestRoundTrip:
    @given(untyped_terms())
    def test_pretty_parse_roundtrip(self, term):
        assert alpha_equal(parse(pretty(term)), term)

    @given(untyped_terms())
    def test_unicode_roundtrip(self, term):
        assert alpha_equal(
            parse(pretty(term, unicode_lambda=True)), term
        )

    @given(untyped_terms())
    def test_compact_roundtrip(self, term):
        assert alpha_equal(parse(pretty_compact(term)), term)

    def test_annotated_roundtrip(self):
        source = r"\x:o. \y:g. Eq x x y y"
        term = parse(source)
        reparsed = parse(pretty(term, annotations=True))
        assert reparsed == term
        assert reparsed.annotation == term.annotation


class TestTokenizer:
    def test_token_kinds(self):
        tokens = tokenize(r"let x = \y. Eq in z")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            "let",
            "name",
            "equals",
            "lambda",
            "name",
            "dot",
            "Eq",
            "in",
            "name",
            "eof",
        ]

    def test_rejects_garbage(self):
        with pytest.raises(ParseError):
            tokenize("x # y")
