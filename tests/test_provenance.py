"""Tests for the static read-set / schema-provenance layer (TLI023-TLI027).

Covers the provenance certificates themselves, the schema contract they
induce (registration warnings, admission rejection, the fixed
multi-relation fixpoint bug), relation-granular cache invalidation keyed
on the read-set's version sub-vector, and the soundness property that the
relations an evaluation actually decodes are a subset of the static
read-set.
"""

import pytest

from repro.analysis import (
    analyze,
    check_schema_contract,
    database_schema,
    fixpoint_provenance,
    operator_library_targets,
    read_set_stats,
    scanned_relation_names,
    term_provenance,
    version_subvector,
)
from repro.analysis.cost import DatabaseStats
from repro.db.generators import random_database
from repro.db.relations import Database, Relation
from repro.errors import SchemaError
from repro.eval.driver import run_query
from repro.eval.ptime import run_fixpoint_query
from repro.lam.parser import parse
from repro.queries.fixpoint import transitive_closure_query
from repro.queries.language import QueryArity
from repro.service import QueryRequest, QueryService
from repro.service.cache import WILDCARD, CachedResult, ResultCache

SWAP = r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n"  # scans R1 only
INTERSECT = (
    r"\R1. \R2. \c. \n. R1 (\x y T. "
    r"R2 (\u v A. Eq x u (Eq y v (c x y T) A) A) T) n"
)
SIG22 = QueryArity((2, 2), 2)


def edges(*pairs):
    return Relation.from_tuples(2, pairs)


@pytest.fixture
def two_rel_db():
    return Database.of({
        "E": edges(("a", "b"), ("b", "c")),
        "S": Relation.unary(["a", "d"]),
    })


# ---------------------------------------------------------------------------
# Read-set certificates (TLI023 / TLI027)
# ---------------------------------------------------------------------------

class TestTermProvenance:
    def test_swap_scans_first_input_only(self):
        report = analyze(parse(SWAP), name="swap", signature=SIG22)
        prov = report.provenance
        assert prov is not None and prov.exact and prov.positional
        assert "TLI023" in report.codes()
        by_name = {read.name: read for read in prov.reads}
        assert by_name["R1"].scanned
        assert not by_name["R2"].scanned
        assert by_name["R2"].scans.hi == 0
        assert [read.name for read in prov.scanned_reads()] == ["R1"]

    def test_intersect_scans_both(self):
        report = analyze(
            parse(INTERSECT), name="intersect", signature=SIG22
        )
        prov = report.provenance
        assert prov is not None and prov.exact
        assert all(read.scanned for read in prov.reads)

    def test_read_arities_come_from_signature(self):
        report = analyze(parse(SWAP), name="swap", signature=SIG22)
        assert [read.arity for read in report.provenance.reads] == [2, 2]

    def test_fallback_is_conservative_top(self, monkeypatch):
        # Force the absint spine walk to abort: the certificate must
        # degrade to "every input, unbounded" (TLI027), never silently
        # claim exactness.
        import repro.analysis.absint as absint

        monkeypatch.setattr(absint, "WALK_SIZE_CAP", 1)
        report = analyze(parse(SWAP), name="swap", signature=SIG22)
        prov = report.provenance
        assert prov is not None and not prov.exact
        assert "TLI027" in report.codes()
        assert "TLI023" not in report.codes()
        assert all(
            read.scanned and read.scans.hi is None for read in prov.reads
        )

    def test_fixpoint_reads_named_inputs(self):
        prov = fixpoint_provenance(transitive_closure_query("E"))
        assert prov.exact and not prov.positional
        assert [read.name for read in prov.reads] == ["E"]
        read = prov.reads[0]
        assert read.arity == 2 and read.scanned and read.scans.hi is None


# ---------------------------------------------------------------------------
# Schema contracts (TLI024 / TLI025)
# ---------------------------------------------------------------------------

class TestSchemaContract:
    def test_positional_count_mismatch(self):
        report = analyze(
            parse(SWAP),
            name="swap",
            signature=SIG22,
            target_schema=(("E", 2), ("S", 1), ("T", 2)),
        )
        assert "TLI024" in report.codes()

    def test_positional_arity_mismatch(self):
        report = analyze(
            parse(SWAP),
            name="swap",
            signature=SIG22,
            target_schema=(("E", 2), ("S", 3)),
        )
        assert "TLI024" in report.codes()

    def test_unused_relation(self):
        report = analyze(
            parse(SWAP),
            name="swap",
            signature=SIG22,
            target_schema=(("E", 2), ("S", 2)),
        )
        assert "TLI024" not in report.codes()
        assert "TLI025" in report.codes()

    def test_matching_schema_is_clean(self):
        report = analyze(
            parse(INTERSECT),
            name="intersect",
            signature=SIG22,
            target_schema=(("E", 2), ("S", 2)),
        )
        codes = report.codes()
        assert "TLI024" not in codes and "TLI025" not in codes

    def test_fixpoint_contract(self, two_rel_db):
        prov = fixpoint_provenance(transitive_closure_query("E"))
        mismatches, unused = check_schema_contract(
            prov, database_schema(two_rel_db)
        )
        assert mismatches == []
        assert any("'S'" in message for message in unused)
        mismatches, _ = check_schema_contract(prov, (("S", 1),))
        assert any("missing" in message for message in mismatches)
        mismatches, _ = check_schema_contract(prov, (("E", 3),))
        assert any("arity" in message for message in mismatches)

    def test_catalog_cross_check_warns(self, two_rel_db):
        service = QueryService()
        service.catalog.register_database("main", two_rel_db)
        entry = service.catalog.register_query(
            "swap", parse(SWAP), signature=SIG22
        )
        # E/S have arities (2, 1): input 1 mismatches, so the catalog
        # carries a TLI024 *warning* (registration still succeeds).
        assert "TLI024" in entry.report.codes()


# ---------------------------------------------------------------------------
# The ROADMAP bug: fixpoint plans on multi-relation databases
# ---------------------------------------------------------------------------

class TestFixpointMultiRelation:
    def test_closure_matches_single_relation_run(self, two_rel_db):
        tc = transitive_closure_query("E")
        single = run_fixpoint_query(
            tc, Database.of({"E": two_rel_db["E"]})
        )
        multi = run_fixpoint_query(tc, two_rel_db)
        assert multi.relation.same_set(single.relation)
        assert ("a", "c") in multi.relation

    def test_read_trace_is_exactly_the_edge_relation(self, two_rel_db):
        trace = set()
        run_fixpoint_query(
            transitive_closure_query("E"), two_rel_db, read_trace=trace
        )
        assert trace == {"E"}

    def test_missing_relation_is_a_tli024_error(self):
        with pytest.raises(SchemaError, match="TLI024"):
            run_fixpoint_query(
                transitive_closure_query("E"),
                Database.of({"S": Relation.unary(["a"])}),
            )

    def test_arity_mismatch_is_a_tli024_error(self):
        with pytest.raises(SchemaError, match="arity"):
            run_fixpoint_query(
                transitive_closure_query("E"),
                Database.of({"E": Relation.unary(["a"])}),
            )

    def test_result_independent_of_extra_relations(self, two_rel_db):
        tc = transitive_closure_query("E")
        base = run_fixpoint_query(tc, two_rel_db)
        grown = two_rel_db.with_relation(
            "S", Relation.unary(["a", "b", "c", "d"])
        )
        assert run_fixpoint_query(tc, grown).relation.same_set(
            base.relation
        )


# ---------------------------------------------------------------------------
# Every engine against multi-relation databases
# ---------------------------------------------------------------------------

class TestMultiRelationEngines:
    @pytest.mark.parametrize("engine", ["nbe", "smallstep"])
    def test_term_engines(self, engine):
        db = random_database([2, 2], [6, 5], universe_size=5, seed=7)
        run = run_query(parse(SWAP), db, arity=2, engine=engine)
        expected = {(y, x) for x, y in db["R1"]}
        assert run.relation.as_set() == frozenset(expected)

    def test_service_paths(self):
        db = random_database([2, 2], [6, 5], universe_size=5, seed=7)
        service = QueryService()
        service.catalog.register_database("main", db)
        service.catalog.register_query(
            "swap", parse(SWAP), signature=SIG22
        )
        service.catalog.register_query(
            "tc", transitive_closure_query("R1")
        )
        with service:
            for query in ("swap", "tc"):
                response = service.execute(
                    QueryRequest(query=query, database="main")
                )
                assert response.ok, response.error
            sharded = service.execute(
                QueryRequest(query="swap", database="main", shards=2)
            )
            assert sharded.ok, sharded.error

    def test_service_rejects_contract_mismatch(self, two_rel_db):
        service = QueryService()
        service.catalog.register_database("main", two_rel_db)
        service.catalog.register_query(
            "swap", parse(SWAP), signature=SIG22
        )
        response = service.execute(
            QueryRequest(query="swap", database="main")
        )
        assert not response.ok
        assert "TLI024" in response.error


# ---------------------------------------------------------------------------
# Per-relation version vectors
# ---------------------------------------------------------------------------

class TestCatalogVersions:
    def test_fresh_registration_is_uniform(self, two_rel_db):
        service = QueryService()
        entry = service.catalog.register_database("main", two_rel_db)
        assert dict(entry.versions) == {"E": 1, "S": 1}

    def test_apply_bumps_only_touched(self, two_rel_db):
        service = QueryService()
        first = service.catalog.register_database("main", two_rel_db)
        entry, touched = service.catalog.apply(
            "main", {"S": Relation.unary(["z"])}
        )
        assert touched == ("S",)
        assert entry.version == 2
        assert entry.relation_version("S") == 2
        assert entry.relation_version("E") == 1
        # The untouched relation keeps its registration-time encoding.
        assert entry.encoded[list(entry.database.names).index("E")] is (
            first.encoded[list(first.database.names).index("E")]
        )

    def test_noop_apply_touches_nothing(self, two_rel_db):
        service = QueryService()
        service.catalog.register_database("main", two_rel_db)
        _, touched = service.catalog.apply(
            "main", {"E": two_rel_db["E"]}
        )
        assert touched == ()

    def test_apply_can_add_a_relation(self, two_rel_db):
        service = QueryService()
        service.catalog.register_database("main", two_rel_db)
        entry, touched = service.catalog.apply(
            "main", {"T": Relation.unary(["q"])}
        )
        assert touched == ("T",)
        assert "T" in entry.database


# ---------------------------------------------------------------------------
# Cache keys and relation-granular invalidation
# ---------------------------------------------------------------------------

def _cached(version=1):
    run = run_query(
        parse(SWAP),
        random_database([2, 2], [3, 3], universe_size=4, seed=1),
        arity=2,
    )
    return CachedResult(
        relation=run.relation,
        decoded=run.decoded,
        normal_form=run.normal_form,
        engine="nbe",
        steps=None,
        stages=None,
        compute_wall_ms=0.0,
        database_version=version,
    )


class TestVersionKeys:
    def test_subvector_names_only_scanned_relations(self):
        db = random_database([2, 2], [4, 4], universe_size=4, seed=2)
        prov = analyze(
            parse(SWAP), name="swap", signature=SIG22
        ).provenance
        assert scanned_relation_names(prov, db) == ("R1",)
        key = version_subvector(prov, db, (("R1", 3), ("R2", 7)), 7)
        assert key == (("R1", 3),)

    def test_wildcard_without_provenance(self):
        db = random_database([2], [3], universe_size=4, seed=2)
        assert version_subvector(None, db, (("R1", 2),), 5) == (
            (WILDCARD, 5),
        )

    def test_restricted_stats_shrink(self):
        db = random_database([2, 2], [4, 9], universe_size=6, seed=3)
        prov = analyze(
            parse(SWAP), name="swap", signature=SIG22
        ).provenance
        restricted = read_set_stats(prov, db)
        full = DatabaseStats.of(db)
        assert restricted.tuples < full.tuples
        assert restricted.relations == 1

    def test_invalidate_relations_granularity(self):
        cache = ResultCache(capacity=16)
        survivor = ("q1", "main", (("R1", 1),), "nbe")
        doomed = ("q2", "main", (("R2", 1),), "nbe")
        legacy = ("q3", "main", 1, "nbe")
        wildcard = ("q4", "main", ((WILDCARD, 1),), "nbe")
        other_db = ("q5", "other", (("R2", 1),), "nbe")
        for key in (survivor, doomed, legacy, wildcard, other_db):
            cache.put(key, _cached())
        dropped = cache.invalidate_relations("main", ["R2"])
        assert dropped == 3
        assert cache.get(survivor) is not None
        assert cache.get(other_db) is not None
        assert cache.get(doomed) is None
        assert cache.get(legacy) is None
        assert cache.get(wildcard) is None


class TestGranularInvalidation:
    @pytest.fixture
    def service(self):
        db = random_database([2, 2], [6, 5], universe_size=5, seed=11)
        svc = QueryService()
        svc.catalog.register_database("main", db)
        svc.catalog.register_query("swap", parse(SWAP), signature=SIG22)
        return svc

    def test_unscanned_bump_preserves_cache(self, service):
        request = QueryRequest(query="swap", database="main")
        first = service.execute(request)
        assert first.ok and not first.cache_hit
        service.apply_update("main", {"R2": edges(("z", "z"))})
        second = service.execute(request)
        assert second.ok and second.cache_hit
        assert second.relation.same_set(first.relation)
        assert second.database_version == 2
        stats = service.cache.stats()
        assert stats.provenance_saves == 1

    def test_scanned_bump_recomputes(self, service):
        request = QueryRequest(query="swap", database="main")
        service.execute(request)
        service.apply_update(
            "main", {"R1": edges(("p", "q"))}
        )
        response = service.execute(request)
        assert response.ok and not response.cache_hit
        assert response.relation.as_set() == frozenset({("q", "p")})
        assert service.cache.stats().provenance_saves == 0

    def test_provenance_saves_metric_exported(self, service):
        request = QueryRequest(query="swap", database="main")
        service.execute(request)
        service.apply_update("main", {"R2": edges(("z", "z"))})
        service.execute(request)
        text = service.registry.render_prometheus()
        assert "repro_cache_provenance_saves_total 1" in text


# ---------------------------------------------------------------------------
# Soundness: decoded relations are a subset of the static read-set
# ---------------------------------------------------------------------------

class TestReadSetSoundness:
    def test_fixpoint_trace_subset_of_certificate(self, two_rel_db):
        query = transitive_closure_query("E")
        prov = fixpoint_provenance(query)
        declared = {read.name for read in prov.scanned_reads()}
        trace = set()
        run_fixpoint_query(query, two_rel_db, read_trace=trace)
        assert trace <= declared

    @pytest.mark.parametrize(
        "target",
        [
            t for t in operator_library_targets()
            if t.signature is not None
        ],
        ids=lambda t: t.name,
    )
    def test_unscanned_inputs_cannot_affect_results(self, target):
        # The certificate claims unscanned inputs are result-independent
        # (that is what licenses surviving their version bumps): perturb
        # each unscanned relation and demand a bit-identical result.
        prov = analyze(
            target.plan, name=target.name, signature=target.signature
        ).provenance
        assert prov is not None and prov.exact
        arities = list(target.signature.inputs)
        db = random_database(
            arities, [4] * len(arities), universe_size=5, seed=13
        )
        base = run_query(
            target.plan, db, arity=target.signature.output
        )
        names = list(db.names)
        for read in prov.reads:
            if read.scanned:
                continue
            name = names[read.position]
            grown = db.with_relation(
                name,
                Relation.from_any_order(
                    db[name].arity,
                    list(db[name])
                    + [("o1",) * db[name].arity],
                ),
            )
            perturbed = run_query(
                target.plan, grown, arity=target.signature.output
            )
            assert perturbed.normal_form == base.normal_form, (
                f"{target.name}: unscanned input {name} changed the "
                f"result"
            )
