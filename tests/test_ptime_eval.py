"""Tests for the polynomial-time fixpoint evaluator (Theorem 5.2)."""

import pytest

from repro.db.encode import encode_database
from repro.db.generators import (
    chain_graph_relation,
    cycle_graph_relation,
    random_graph_relation,
)
from repro.db.relations import Database, Relation
from repro.eval.ptime import run_fixpoint_query
from repro.lam.alpha import alpha_equal
from repro.lam.nbe import nbe_normalize
from repro.lam.terms import app
from repro.queries.fixpoint import (
    FixpointQuery,
    build_fixpoint_query,
    fix,
    transitive_closure_query,
)
from repro.relalg.ast import Base, ColumnEqualsColumn, Product, Project, Select, Union
from tests.conftest import transitive_closure


class TestTransitiveClosure:
    @pytest.mark.parametrize("style", ["tli", "mli"])
    @pytest.mark.parametrize(
        "graph",
        [
            chain_graph_relation(6),
            cycle_graph_relation(5),
            random_graph_relation(7, 0.3, seed=4),
            Relation.empty(2),
        ],
        ids=["chain", "cycle", "random", "empty"],
    )
    def test_tc_matches_reference(self, style, graph):
        db = Database.of({"E": graph})
        run = run_fixpoint_query(
            transitive_closure_query("E"), db, style=style
        )
        assert run.relation.as_set() == transitive_closure(graph)

    def test_stage_sizes_monotone(self):
        db = Database.of({"E": chain_graph_relation(6)})
        run = run_fixpoint_query(transitive_closure_query("E"), db)
        assert run.stage_sizes == sorted(run.stage_sizes)

    def test_convergence_within_crank_length(self):
        db = Database.of({"E": chain_graph_relation(5)})
        run = run_fixpoint_query(transitive_closure_query("E"), db)
        assert run.converged_at is not None
        assert run.converged_at <= len(db.active_domain()) ** 2

    def test_full_crank_equals_early_stopping(self):
        db = Database.of({"E": chain_graph_relation(4)})
        query = transitive_closure_query("E")
        early = run_fixpoint_query(query, db, stop_on_convergence=True)
        full = run_fixpoint_query(query, db, stop_on_convergence=False)
        assert alpha_equal(early.normal_form, full.normal_form)
        assert full.stages == len(db.active_domain()) ** 2


class TestAgreementWithNaiveReduction:
    @pytest.mark.parametrize("style", ["tli", "mli"])
    def test_exact_normal_form_on_tiny_instance(self, style):
        # The stage-materializing strategy reduces the query's own
        # subterms; by Church-Rosser the result is literally the normal
        # form of (Fix r̄) — checked here against whole-term reduction.
        query = transitive_closure_query("E")
        db = Database.of({"E": Relation.from_tuples(2, [("o1", "o2")])})
        term = build_fixpoint_query(query, style)
        naive = nbe_normalize(
            app(term, *encode_database(db)), max_depth=2_000_000
        )
        staged = run_fixpoint_query(
            query, db, style=style, stop_on_convergence=False
        )
        assert alpha_equal(naive, staged.normal_form)


class TestOtherFixpoints:
    def test_symmetric_closure(self):
        step = Union(Base("E"), Project(fix(), (1, 0)))
        query = FixpointQuery.of(step, 2, {"E": 2})
        graph = chain_graph_relation(4)
        db = Database.of({"E": graph})
        run = run_fixpoint_query(query, db)
        expected = set(graph.tuples) | {
            (b, a) for (a, b) in graph.tuples
        }
        assert run.relation.as_set() == expected

    def test_reachable_from_source(self):
        # reach(x) <- S(x) | reach(y), E(y, x)
        step = Union(
            Base("S"),
            Project(
                Select(
                    Product(fix(), Base("E")), ColumnEqualsColumn(0, 1)
                ),
                (2,),
            ),
        )
        query = FixpointQuery.of(step, 1, {"S": 1, "E": 2})
        graph = chain_graph_relation(5)
        db = Database.of(
            {"S": Relation.unary(["o2"]), "E": graph}
        )
        run = run_fixpoint_query(query, db)
        assert run.relation.as_set() == {
            ("o2",), ("o3",), ("o4",), ("o5",)
        }

    def test_same_generation(self):
        up = Relation.from_tuples(2, [("o1", "o3"), ("o2", "o3")])
        flat = Relation.from_tuples(2, [("o3", "o3")])
        down = Relation.from_tuples(2, [("o3", "o1"), ("o3", "o2")])
        step = Union(
            Base("flat"),
            Project(
                Select(
                    Product(
                        Base("up"), Product(fix(), Base("down"))
                    ),
                    # up(x, x1), sg(x1, y1), down(y1, y): join columns
                    # 1=2 and 3=4 in (x, x1, x1', y1, y1', y).
                    ColumnEqualsColumn(1, 2),
                ).where(ColumnEqualsColumn(3, 4)),
                (0, 5),
            ),
        )
        query = FixpointQuery.of(
            step, 2, {"flat": 2, "up": 2, "down": 2}
        )
        db = Database.of({"flat": flat, "up": up, "down": down})
        run = run_fixpoint_query(query, db)
        # o1 and o2 are in the same generation (both one step below o3).
        assert ("o1", "o2") in run.relation.as_set()
        assert ("o2", "o1") in run.relation.as_set()

    def test_arity_one_domain_closure(self):
        # Everything in the domain: fix(x) <- adom(x).
        from repro.relalg.ast import adom

        query = FixpointQuery.of(adom(), 1, {"R": 2})
        db = Database.of(
            {"R": Relation.from_tuples(2, [("o1", "o2")])}
        )
        run = run_fixpoint_query(query, db)
        assert run.relation.as_set() == {("o1",), ("o2",)}
