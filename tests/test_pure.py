"""Tests for the pure-TLC track (Section 1's results (c)/(d) for TLC).

Constants become domain-position selectors, the equality tester travels
with the data, queries are pure beta — zero delta steps — and their
functionality order is 4, one above TLC='s 3.
"""

import pytest

from repro.db.generators import random_database, random_relation
from repro.db.relations import Database, Relation
from repro.errors import DecodeError, EncodingError
from repro.lam.combinators import boolean_value
from repro.lam.nbe import nbe_normalize
from repro.lam.terms import Var, app
from repro.pure.driver import run_pure_query
from repro.pure.encode import (
    decode_pure_relation,
    encode_pure_database,
    equality_tester_term,
    selector_term,
)
from repro.pure.operators import (
    pure_difference_term,
    pure_equal_term,
    pure_intersection_term,
    pure_query,
    pure_select_term,
    pure_union_term,
)
from repro.relalg.ast import Base, ColumnEqualsColumn
from repro.relalg.engine import evaluate_ra
from repro.types.infer import infer, typable


class TestSelectorEncoding:
    def test_selector_shape(self):
        term = selector_term(1, 3)
        assert term.pretty() == r"\z1. \z2. \z3. z2"
        # Applying the selector picks its position.
        picked = nbe_normalize(
            app(term, Var("a"), Var("b"), Var("c"))
        )
        assert picked == Var("b")

    def test_selector_bounds(self):
        with pytest.raises(EncodingError):
            selector_term(3, 3)

    def test_equality_tester_semantics(self):
        tester = equality_tester_term(3)
        for i in range(3):
            for j in range(3):
                result = nbe_normalize(
                    app(
                        tester,
                        selector_term(i, 3),
                        selector_term(j, 3),
                        Var("u"),
                        Var("v"),
                    )
                )
                assert result == (Var("u") if i == j else Var("v"))

    def test_tester_is_simply_typable(self):
        assert typable(equality_tester_term(4))

    def test_encode_decode_roundtrip(self):
        db = random_database([2], [5], universe_size=4, seed=33)
        encoded = encode_pure_database(db)
        name, term = encoded.relations[0]
        decoded = decode_pure_relation(
            nbe_normalize(term), 2, encoded.domain
        )
        assert decoded == db[name]

    def test_decode_rejects_non_selectors(self):
        with pytest.raises(DecodeError):
            decode_pure_relation(
                nbe_normalize(app(Var("junk"))), 1, ("a", "b")
            )


class TestPureOperators:
    @pytest.fixture
    def db(self):
        return random_database([2, 2], [5, 4], universe_size=4, seed=34)

    def test_equal(self):
        db = Database.of({"R": random_relation(1, 3, seed=35)})
        encoded = encode_pure_database(db)
        eq = pure_query(
            app(pure_equal_term(1), Var("a"), Var("b"), Var("u"), Var("v")),
            [],
        )
        # Not a relation query; just check the boolean semantics through
        # the encoded tester.
        tester = encoded.equality
        for i in range(len(encoded.domain)):
            from repro.pure.encode import selector_term as sel

            result = nbe_normalize(
                app(
                    tester,
                    sel(i, len(encoded.domain)),
                    sel(0, len(encoded.domain)),
                    Var("u"),
                    Var("v"),
                )
            )
            assert result == (Var("u") if i == 0 else Var("v"))

    @pytest.mark.parametrize(
        "build, expr",
        [
            (
                lambda: app(pure_intersection_term(2), Var("R"), Var("S")),
                Base("R1").intersect(Base("R2")),
            ),
            (
                lambda: app(pure_union_term(2), Var("R"), Var("S")),
                Base("R1").union(Base("R2")),
            ),
            (
                lambda: app(pure_difference_term(2), Var("R"), Var("S")),
                Base("R1").minus(Base("R2")),
            ),
            (
                lambda: app(pure_select_term(2, 0, 1), Var("R")),
                Base("R1").where(ColumnEqualsColumn(0, 1)),
            ),
        ],
        ids=["intersection", "union", "difference", "select"],
    )
    def test_operator_agreement(self, db, build, expr):
        query = pure_query(build(), ["R", "S"])
        run = run_pure_query(query, db, 2, require_pure=True)
        assert run.delta_steps == 0
        assert run.relation.same_set(evaluate_ra(expr, db))

    def test_order_is_four_at_the_pure_convention(self, db):
        # "order at most 3 in TLC= or order at most 4 in TLC" (Section 1).
        encoded = encode_pure_database(db)
        query = pure_query(
            app(pure_intersection_term(2), Var("R"), Var("S")),
            ["R", "S"],
        )
        result = infer(app(query, *encoded.inputs))
        assert result.derivation_order() == 4

    def test_empty_database(self):
        db = Database.of({"R": Relation.empty(2), "S": Relation.empty(2)})
        query = pure_query(
            app(pure_union_term(2), Var("R"), Var("S")), ["R", "S"]
        )
        run = run_pure_query(query, db, 2)
        assert len(run.relation) == 0
