"""Tests for the small-step reduction engine (Section 2.1 semantics)."""

import pytest

from repro.errors import FuelExhausted
from repro.lam.alpha import alpha_equal
from repro.lam.combinators import church_numeral, numeral_value
from repro.lam.parser import parse
from repro.lam.reduce import (
    FALSE,
    TRUE,
    Strategy,
    contract_root,
    eta_normalize,
    eta_step,
    find_redex,
    is_normal_form,
    normalize,
    step,
)
from repro.lam.terms import Abs, App, Const, EqConst, Var, app, lam, let


class TestBetaReduction:
    def test_identity_application(self):
        term = app(Abs("x", Var("x")), Const("o1"))
        result, kind = contract_root(term)
        assert result == Const("o1")
        assert kind == "beta"

    def test_normal_form_reached(self):
        outcome = normalize(parse(r"(\x. x x) (\y. y)"))
        assert alpha_equal(outcome.term, Abs("y", Var("y")))
        assert outcome.beta_steps == 2

    def test_normal_order_avoids_argument_work(self):
        # K-combinator discards its second argument: normal order never
        # reduces it, applicative order does.
        k = lam(["a", "b"], Var("a"))
        expensive = app(Abs("x", Var("x")), Const("o9"))
        term = app(k, Const("o1"), expensive)
        normal = normalize(term, Strategy.NORMAL_ORDER)
        applicative = normalize(term, Strategy.APPLICATIVE_ORDER)
        assert normal.term == applicative.term == Const("o1")
        assert normal.steps < applicative.steps


class TestDeltaReduction:
    def test_equal_constants(self):
        term = app(EqConst(), Const("o1"), Const("o1"))
        result, kind = contract_root(term)
        assert kind == "delta"
        assert alpha_equal(result, TRUE)

    def test_unequal_constants(self):
        term = app(EqConst(), Const("o1"), Const("o2"))
        result, _ = contract_root(term)
        assert alpha_equal(result, FALSE)

    def test_if_then_else_idiom(self):
        # Eq x y p q as "if x = y then p else q" (Section 2.1).
        term = parse("Eq o1 o1 p q")
        assert normalize(term).term == Var("p")
        term = parse("Eq o1 o2 p q")
        assert normalize(term).term == Var("q")

    def test_eq_stuck_on_variables(self):
        term = app(EqConst(), Var("x"), Const("o1"))
        assert is_normal_form(term)

    def test_delta_after_beta(self):
        term = parse(r"(\x. Eq x o2 a b) o2")
        outcome = normalize(term)
        assert outcome.term == Var("a")
        assert outcome.delta_steps == 1


class TestLetReduction:
    def test_let_contracts_to_substitution(self):
        term = let("x", Const("o1"), app(Var("f"), Var("x")))
        result, kind = contract_root(term)
        assert kind == "let"
        assert result == app(Var("f"), Const("o1"))

    def test_let_polymorphic_use_reduces(self):
        term = parse(r"let f = \x. x in f f")
        outcome = normalize(term)
        assert alpha_equal(outcome.term, Abs("x", Var("x")))
        assert outcome.let_steps == 1


class TestStrategiesAgree:
    @pytest.mark.parametrize(
        "source",
        [
            r"(\x. x) o1",
            r"(\f. \x. f (f x)) (\y. y) o2",
            "Eq o1 o1 (Eq o2 o3 a b) c",
            r"let g = \x. \y. x in g o1 o2",
        ],
    )
    def test_same_normal_form(self, source):
        term = parse(source)
        normal = normalize(term, Strategy.NORMAL_ORDER).term
        applicative = normalize(term, Strategy.APPLICATIVE_ORDER).term
        assert alpha_equal(normal, applicative)

    def test_weak_head_stops_under_binder(self):
        term = Abs("x", app(Abs("y", Var("y")), Var("x")))
        outcome = normalize(term, Strategy.WEAK_HEAD)
        assert outcome.term == term  # redex is under the binder
        assert normalize(term).steps == 1


class TestWeakHeadNormalForm:
    """Regression tests: weak-head reduction must stop once the head is
    stuck — argument positions are never reduced."""

    def test_stuck_head_leaves_argument_redex(self):
        redex = app(Abs("y", Var("y")), Const("o1"))
        term = app(Var("f"), redex)  # head is a free variable: WHNF
        assert step(term, Strategy.WEAK_HEAD) is None
        outcome = normalize(term, Strategy.WEAK_HEAD)
        assert outcome.term == term
        assert outcome.steps == 0
        # Full normal order does contract the argument.
        assert normalize(term).steps == 1

    def test_stuck_head_with_diverging_argument_terminates(self):
        omega = app(
            Abs("x", app(Var("x"), Var("x"))),
            Abs("x", app(Var("x"), Var("x"))),
        )
        term = app(Var("f"), omega)
        # Before the fix this looped on omega until FuelExhausted.
        outcome = normalize(term, Strategy.WEAK_HEAD, fuel=50)
        assert outcome.term == term
        assert outcome.steps == 0

    def test_head_spine_is_still_reduced(self):
        # (λa. λb. a) o1 M: the head redexes fire, M is discarded without
        # ever being touched.
        omega = app(
            Abs("x", app(Var("x"), Var("x"))),
            Abs("x", app(Var("x"), Var("x"))),
        )
        term = app(lam(["a", "b"], Var("a")), Const("o1"), omega)
        outcome = normalize(term, Strategy.WEAK_HEAD, fuel=50)
        assert outcome.term == Const("o1")
        assert outcome.steps == 2

    def test_delta_fires_in_head_position(self):
        term = app(EqConst(), Const("o1"), Const("o1"), Var("u"), Var("v"))
        outcome = normalize(term, Strategy.WEAK_HEAD)
        assert outcome.term == Var("u")

    def test_let_is_a_head_redex(self):
        term = let("x", Const("o1"), Var("x"))
        outcome = normalize(term, Strategy.WEAK_HEAD)
        assert outcome.term == Const("o1")
        assert outcome.let_steps == 1


class TestNormalForms:
    def test_is_normal_form(self):
        assert is_normal_form(Var("x"))
        assert is_normal_form(Abs("x", app(Var("x"), Const("o1"))))
        assert not is_normal_form(app(Abs("x", Var("x")), Var("y")))

    def test_find_redex(self):
        redex = app(Abs("x", Var("x")), Var("y"))
        term = Abs("z", app(Var("f"), redex))
        assert find_redex(term) == redex

    def test_fuel_exhaustion(self):
        omega = app(
            Abs("x", app(Var("x"), Var("x"))),
            Abs("x", app(Var("x"), Var("x"))),
        )
        with pytest.raises(FuelExhausted):
            normalize(omega, fuel=50)

    def test_step_counts_accumulate(self):
        outcome = normalize(
            app(church_numeral(3), Abs("u", Var("u")), Const("o1"))
        )
        assert outcome.steps == (
            outcome.beta_steps
            + outcome.delta_steps
            + outcome.let_steps
        )


class TestEta:
    def test_eta_contraction(self):
        term = Abs("x", app(Var("f"), Var("x")))
        assert eta_step(term) == Var("f")

    def test_eta_blocked_when_var_free_in_fn(self):
        term = Abs("x", app(Var("x"), Var("x")))
        assert eta_step(term) is None

    def test_eta_normalize(self):
        term = Abs("x", app(Abs("y", app(Var("f"), Var("y"))), Var("x")))
        # Two eta steps: inner λy. f y, then λx. f x.
        assert eta_normalize(term) == Var("f")

    def test_eta_not_part_of_default_reduction(self):
        term = Abs("x", app(Var("f"), Var("x")))
        assert is_normal_form(term)


class TestEtaOnLet:
    """eta_step / eta_normalize must descend into both positions of a
    ``let`` node (previously untested corners of reduce.py)."""

    def test_eta_in_let_bound(self):
        term = let("g", Abs("x", app(Var("f"), Var("x"))), Const("o1"))
        assert eta_step(term) == let("g", Var("f"), Const("o1"))

    def test_eta_in_let_body(self):
        term = let("g", Const("o1"), Abs("x", app(Var("f"), Var("x"))))
        assert eta_step(term) == let("g", Const("o1"), Var("f"))

    def test_eta_prefers_bound_over_body(self):
        redex = Abs("x", app(Var("f"), Var("x")))
        term = let("g", redex, redex)
        # Leftmost: the bound position contracts first.
        assert eta_step(term) == let("g", Var("f"), redex)

    def test_eta_normalize_contracts_both_positions(self):
        redex = Abs("x", app(Var("f"), Var("x")))
        term = let("g", redex, app(Var("g"), redex))
        assert eta_normalize(term) == let(
            "g", Var("f"), app(Var("g"), Var("f"))
        )

    def test_let_with_no_eta_redex_is_fixed(self):
        term = let("g", Abs("x", app(Var("x"), Var("x"))), Var("g"))
        assert eta_step(term) is None
        assert eta_normalize(term) == term


class TestApplicativeLet:
    """Applicative order normalizes the bound term before contracting the
    let, and only then touches the body."""

    def test_bound_reduced_before_contraction(self):
        term = let("x", app(Abs("y", Var("y")), Const("o1")),
                   app(Var("c"), Var("x"), Var("x")))
        first = step(term, Strategy.APPLICATIVE_ORDER)
        assert first is not None
        reduct, kind = first
        assert kind == "beta"  # the bound redex fires first
        assert reduct == let("x", Const("o1"),
                             app(Var("c"), Var("x"), Var("x")))
        outcome = normalize(term, Strategy.APPLICATIVE_ORDER)
        assert outcome.term == app(Var("c"), Const("o1"), Const("o1"))
        assert outcome.beta_steps == 1 and outcome.let_steps == 1

    def test_normal_order_duplicates_bound_redex(self):
        # The same term under normal order contracts the let first and
        # pays for the bound redex at both occurrences.
        term = let("x", app(Abs("y", Var("y")), Const("o1")),
                   app(Var("c"), Var("x"), Var("x")))
        outcome = normalize(term, Strategy.NORMAL_ORDER)
        assert outcome.term == app(Var("c"), Const("o1"), Const("o1"))
        assert outcome.beta_steps == 2 and outcome.let_steps == 1

    def test_body_redex_waits_for_contraction(self):
        term = let("x", Const("o1"), app(Abs("y", Var("y")), Var("x")))
        first = step(term, Strategy.APPLICATIVE_ORDER)
        assert first is not None
        reduct, kind = first
        # Bound is already normal, so the let contracts before the body
        # redex is considered.
        assert kind == "let"
        assert reduct == app(Abs("y", Var("y")), Const("o1"))

    def test_nested_lets_innermost_first(self):
        inner = let("y", app(Abs("z", Var("z")), Const("o2")), Var("y"))
        term = let("x", inner, Var("x"))
        outcome = normalize(term, Strategy.APPLICATIVE_ORDER)
        assert outcome.term == Const("o2")
        assert outcome.let_steps == 2

    def test_agrees_with_normal_order_on_let_terms(self):
        term = parse(r"let g = \x. Eq x o1 in g o1 a b")
        normal = normalize(term, Strategy.NORMAL_ORDER).term
        applicative = normalize(term, Strategy.APPLICATIVE_ORDER).term
        assert alpha_equal(normal, applicative)


class TestChurchRosser:
    def test_numeral_arithmetic_any_order(self):
        from repro.lam.combinators import add_term

        term = app(add_term(), church_numeral(2), church_numeral(2))
        for strategy in (
            Strategy.NORMAL_ORDER,
            Strategy.APPLICATIVE_ORDER,
        ):
            assert numeral_value(normalize(term, strategy).term) == 4
