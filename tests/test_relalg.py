"""Tests for the relational algebra AST and baseline engine."""

import pytest

from repro.db.generators import random_database, random_relation
from repro.db.relations import Database, Relation
from repro.errors import SchemaError
from repro.relalg.ast import (
    Base,
    ColumnEqualsColumn,
    ColumnEqualsConst,
    CondNot,
    Difference,
    Intersection,
    Product,
    Project,
    Select,
    Union,
    adom,
    condition_columns,
    join,
    precedes,
    schema_with_derived,
)
from repro.relalg.engine import database_schema, derived_relation, evaluate_ra


@pytest.fixture
def db():
    return Database.of(
        {
            "R": Relation.from_tuples(
                2, [("o1", "o2"), ("o2", "o2"), ("o3", "o1")]
            ),
            "S": Relation.from_tuples(2, [("o2", "o2"), ("o1", "o3")]),
        }
    )


class TestArityChecking:
    def test_base_arity(self, db):
        schema = database_schema(db)
        assert Base("R").arity(schema) == 2

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            Base("missing").arity({})

    def test_union_arity_mismatch(self, db):
        schema = database_schema(db)
        expr = Union(Base("R"), Project(Base("S"), (0,)))
        with pytest.raises(SchemaError):
            expr.arity(schema)

    def test_projection_out_of_range(self, db):
        schema = database_schema(db)
        with pytest.raises(SchemaError):
            Project(Base("R"), (5,)).arity(schema)

    def test_selection_column_out_of_range(self, db):
        schema = database_schema(db)
        with pytest.raises(SchemaError):
            Select(Base("R"), ColumnEqualsColumn(0, 9)).arity(schema)

    def test_schema_with_derived(self, db):
        schema = schema_with_derived(database_schema(db))
        assert schema["__adom__"] == 1
        assert schema["__precedes__R"] == 4


class TestEngine:
    def test_union_dedups_keeping_left_order(self, db):
        result = evaluate_ra(Union(Base("R"), Base("S")), db)
        assert result.tuples[0] == ("o1", "o2")
        assert len(result) == 4

    def test_intersection(self, db):
        result = evaluate_ra(Intersection(Base("R"), Base("S")), db)
        assert result.as_set() == {("o2", "o2")}

    def test_difference(self, db):
        result = evaluate_ra(Difference(Base("R"), Base("S")), db)
        assert result.as_set() == {("o1", "o2"), ("o3", "o1")}

    def test_product(self, db):
        result = evaluate_ra(
            Product(Project(Base("R"), (0,)), Project(Base("S"), (1,))),
            db,
        )
        assert result.arity == 2
        assert len(result) == len(
            {
                (a, b)
                for (a,) in evaluate_ra(Project(Base("R"), (0,)), db)
                for (b,) in evaluate_ra(Project(Base("S"), (1,)), db)
            }
        )

    def test_select_constant(self, db):
        result = evaluate_ra(
            Select(Base("R"), ColumnEqualsConst(0, "o2")), db
        )
        assert result.as_set() == {("o2", "o2")}

    def test_select_negation(self, db):
        result = evaluate_ra(
            Select(Base("R"), CondNot(ColumnEqualsColumn(0, 1))), db
        )
        assert result.as_set() == {("o1", "o2"), ("o3", "o1")}

    def test_fluent_interface(self, db):
        expr = Base("R").where(ColumnEqualsColumn(0, 1)).project(0)
        assert evaluate_ra(expr, db).as_set() == {("o2",)}

    def test_join_helper(self, db):
        schema = database_schema(db)
        expr = join(Base("R"), Base("S"), [(1, 0)], schema)
        result = evaluate_ra(expr, db)
        assert result.as_set() == {
            r + s
            for r in db["R"].tuples
            for s in db["S"].tuples
            if r[1] == s[0]
        }


class TestDerivedBases:
    def test_adom(self, db):
        result = evaluate_ra(adom(), db)
        assert result.as_set() == {("o1",), ("o2",), ("o3",)}

    def test_precedes_is_strict_list_order(self, db):
        result = evaluate_ra(precedes("R"), db)
        rows = db["R"].tuples
        expected = {
            rows[i] + rows[j]
            for i in range(len(rows))
            for j in range(i + 1, len(rows))
        }
        assert result.as_set() == expected

    def test_derived_relation_unknown(self, db):
        with pytest.raises(SchemaError):
            derived_relation(db, "__nonsense__")

    def test_condition_columns(self):
        cond = CondNot(
            ColumnEqualsColumn(0, 2)
        ) | ColumnEqualsConst(1, "o1")
        assert set(condition_columns(cond)) == {0, 1, 2}
