"""Theorem 4.1 tests: RA compiled to TLI=0 agrees with the baseline engine.

Includes a hypothesis generator of random relational-algebra expressions;
agreement of the compiled lambda term's reduction with the baseline engine
on random databases is the executable form of the theorem's constructive
half (see also tests/test_theorems.py for the curated suite).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.generators import random_database
from repro.eval.driver import run_query
from repro.eval.materialize import run_ra_query_materialized
from repro.lam.alpha import alpha_equal
from repro.queries.language import QueryArity, is_mli_query_term, is_tli_query_term
from repro.queries.relalg_compile import build_ra_query, compile_ra, schema_of
from repro.relalg.ast import (
    Base,
    ColumnEqualsColumn,
    ColumnEqualsConst,
    CondNot,
    Difference,
    Intersection,
    Product,
    Project,
    RAExpr,
    Select,
    Union,
    adom,
    precedes,
    schema_with_derived,
)
from repro.relalg.engine import evaluate_ra

SCHEMA = {"R1": 2, "R2": 2}


@st.composite
def ra_expressions(draw, depth: int = 3) -> RAExpr:
    """Random well-formed RA expressions over the fixed SCHEMA."""
    full = schema_with_derived(SCHEMA)

    def atom():
        return draw(
            st.sampled_from(
                [Base("R1"), Base("R2"), adom(), precedes("R1")]
            )
        )

    def build(d) -> RAExpr:
        if d == 0:
            return atom()
        choice = draw(st.integers(min_value=0, max_value=6))
        if choice == 0:
            return atom()
        inner = build(d - 1)
        arity = inner.arity(full)
        if choice == 1 and arity >= 1:
            columns = draw(
                st.lists(
                    st.integers(min_value=0, max_value=arity - 1),
                    min_size=1,
                    max_size=3,
                )
            )
            return Project(inner, tuple(columns))
        if choice == 2 and arity >= 2:
            return Select(inner, ColumnEqualsColumn(0, arity - 1))
        if choice == 3 and arity >= 1:
            return Select(
                inner, CondNot(ColumnEqualsConst(0, "o1"))
            )
        other = build(d - 1)
        if choice == 4:
            return Product(inner, other)
        # Align arities for the set operations by projection.
        arity_o = other.arity(full)
        common = min(arity, arity_o)
        if common == 0:
            return Product(inner, other)
        left = Project(inner, tuple(range(common)))
        right = Project(other, tuple(range(common)))
        if choice == 5:
            return Union(left, right)
        return Difference(left, right)

    return build(depth)


class TestCompiledAgreement:
    @given(
        ra_expressions(),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_expressions_agree(self, expr, seed):
        db = random_database([2, 2], [4, 3], universe_size=3, seed=seed)
        expected = evaluate_ra(expr, db)
        got = run_ra_query_materialized(expr, db).relation
        assert got.same_set(expected)

    @given(ra_expressions(depth=2), st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_whole_term_reduction_agrees(self, expr, seed):
        db = random_database([2, 2], [3, 3], universe_size=3, seed=seed)
        expected = evaluate_ra(expr, db)
        query = build_ra_query(expr, ["R1", "R2"], SCHEMA)
        arity = expr.arity(schema_with_derived(SCHEMA))
        got = run_query(query, db, arity=arity).relation
        assert got.same_set(expected)

    @given(ra_expressions(depth=2), st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_materialized_equals_whole_term_normal_form(self, expr, seed):
        # Church-Rosser: per-operator materialization is a reduction
        # strategy of the same term.
        db = random_database([2, 2], [3, 3], universe_size=3, seed=seed)
        query = build_ra_query(expr, ["R1", "R2"], SCHEMA)
        arity = expr.arity(schema_with_derived(SCHEMA))
        whole = run_query(query, db, arity=arity).normal_form
        materialized = run_ra_query_materialized(expr, db).normal_form
        assert alpha_equal(whole, materialized)


class TestCompiledQueriesAreTLI0:
    @given(ra_expressions())
    @settings(max_examples=20, deadline=None)
    def test_compiled_query_is_order_3(self, expr):
        query = build_ra_query(expr, ["R1", "R2"], SCHEMA)
        arity = expr.arity(schema_with_derived(SCHEMA))
        signature = QueryArity((2, 2), arity)
        assert is_tli_query_term(query, signature, 0)
        assert is_mli_query_term(query, signature, 0)


class TestCompileErrors:
    def test_missing_variable_mapping(self):
        from repro.errors import QueryTermError

        with pytest.raises(QueryTermError):
            compile_ra(Base("R1"), SCHEMA, variables={})

    def test_unknown_input(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            build_ra_query(Base("R9"), ["R9"], SCHEMA)
