"""Tests for the query service runtime (catalog, cache, batch executor)."""

import time

import pytest

from repro.db.generators import chain_graph_relation, random_database
from repro.db.relations import Database, Relation
from repro.errors import EvaluationError, QueryTermError, SchemaError
from repro.eval.driver import run_query
from repro.lam.parser import parse
from repro.lam.terms import digest
from repro.queries.fixpoint import transitive_closure_query
from repro.queries.language import QueryArity
from repro.queries.relalg_compile import build_ra_query
from repro.relalg.ast import Base, ColumnEqualsColumn
from repro.service import (
    Catalog,
    QueryRequest,
    QueryService,
    ResultCache,
)
from repro.service.cache import CachedResult


SWAP = r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n"
DIAG = r"\R1. \R2. \c. \n. R1 (\x y T. Eq x y (c x x T) T) n"
INTERSECT = (
    r"\R1. \R2. \c. \n. R1 (\x y T. "
    r"R2 (\u v A. Eq x u (Eq y v (c x y T) A) A) T) n"
)
SIG22 = QueryArity((2, 2), 2)


@pytest.fixture
def db():
    return random_database([2, 2], [8, 6], universe_size=6, seed=11)


@pytest.fixture
def service(db):
    svc = QueryService()
    svc.catalog.register_database("main", db)
    svc.catalog.register_query("swap", parse(SWAP), signature=SIG22)
    return svc


class TestCatalog:
    def test_database_encoded_once(self, db):
        catalog = Catalog()
        entry = catalog.register_database("main", db)
        assert len(entry.encoded) == len(db)
        # Requests share the registration-time encoding objects.
        again = catalog.get_database("main")
        assert again.encoded is entry.encoded
        assert again.version == 1

    def test_update_bumps_version_and_digest(self, db):
        catalog = Catalog()
        first = catalog.register_database("main", db)
        other = random_database([2, 2], [5, 4], universe_size=6, seed=3)
        second = catalog.update_database("main", other)
        assert second.version == 2
        assert second.digest != first.digest

    def test_update_unregistered_fails(self, db):
        with pytest.raises(SchemaError):
            Catalog().update_database("nope", db)

    def test_unknown_lookups_fail(self):
        catalog = Catalog()
        with pytest.raises(SchemaError):
            catalog.get_database("missing")
        with pytest.raises(EvaluationError):
            catalog.get_query("missing")

    def test_term_registration_checks_order(self):
        catalog = Catalog()
        entry = catalog.register_query(
            "swap", parse(SWAP), signature=SIG22
        )
        # The plan compiles cleanly, so registration auto-selects the
        # set-backed engine (TLI028).
        assert entry.engine == "ra"
        assert entry.compiled is not None and entry.compiled.compiled
        assert entry.kind == "term"
        assert entry.order == 3  # TLI=0 lives at order 3
        assert entry.output_arity == 2

    def test_non_query_term_rejected_at_registration(self):
        # Result type o, not a relation type: fails Lemma 3.9 checking.
        with pytest.raises(QueryTermError):
            Catalog().register_query(
                "bad",
                parse(r"\R1. \R2. R1 (\x y T. x) o1"),
                signature=SIG22,
            )

    def test_ill_typed_term_rejected_without_signature(self):
        from repro.errors import TypeInferenceError

        with pytest.raises(TypeInferenceError):
            Catalog().register_query("bad", parse(r"\x. x x"))

    def test_check_false_skips_validation(self):
        entry = Catalog().register_query(
            "unchecked", parse(r"\x. x x"), check=False
        )
        assert entry.order is None

    def test_fixpoint_selects_ptime_engine(self):
        entry = Catalog().register_query("tc", transitive_closure_query())
        assert entry.engine == "fixpoint"
        assert entry.kind == "fixpoint"
        assert entry.order == 4  # TLI=1 towers live at order 4
        assert entry.output_arity == 2

    def test_engine_override(self):
        entry = Catalog().register_query(
            "swap", parse(SWAP), signature=SIG22, engine="smallstep"
        )
        assert entry.engine == "smallstep"
        with pytest.raises(EvaluationError):
            Catalog().register_query(
                "swap", parse(SWAP), signature=SIG22, engine="warp"
            )

    def test_queries_interned(self):
        catalog = Catalog()
        a = catalog.register_query("a", parse(SWAP), signature=SIG22)
        b = catalog.register_query("b", parse(SWAP), signature=SIG22)
        assert a.term is b.term
        assert a.digest == b.digest


class TestResultCache:
    def _entry(self, relation):
        from repro.db.decode import DecodedRelation

        decoded = DecodedRelation(relation, relation.tuples, False, False)
        return CachedResult(
            relation=relation,
            decoded=decoded,
            normal_form=parse("o1"),
            engine="nbe",
            steps=None,
            stages=None,
            compute_wall_ms=1.0,
        )

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        rel = Relation.from_tuples(1, [("o1",)])
        for name in ("a", "b", "c"):
            cache.put((name, "db", 1, "nbe"), self._entry(rel))
        assert cache.get(("a", "db", 1, "nbe")) is None  # evicted
        assert cache.get(("c", "db", 1, "nbe")) is not None
        stats = cache.stats()
        assert stats.evictions == 1 and stats.size == 2

    def test_invalidate_database(self):
        cache = ResultCache(capacity=8)
        rel = Relation.from_tuples(1, [("o1",)])
        cache.put(("q", "a", 1, "nbe"), self._entry(rel))
        cache.put(("q", "a", 2, "nbe"), self._entry(rel))
        cache.put(("q", "b", 1, "nbe"), self._entry(rel))
        assert cache.invalidate_database("a") == 2
        assert cache.get(("q", "b", 1, "nbe")) is not None
        assert len(cache) == 1

    def test_hit_rate(self):
        cache = ResultCache(capacity=2)
        rel = Relation.from_tuples(1, [("o1",)])
        key = ("q", "db", 1, "nbe")
        assert cache.get(key) is None
        cache.put(key, self._entry(rel))
        assert cache.get(key) is not None
        assert cache.stats().hit_rate == 0.5


class TestExecute:
    def test_single_request(self, service, db):
        response = service.execute(
            QueryRequest(query="swap", database="main")
        )
        assert response.ok and not response.cache_hit
        expected = Relation.from_any_order(
            2, [(y, x) for x, y in db["R1"].tuples]
        )
        assert response.relation.same_set(expected)
        assert response.wall_ms > 0
        assert response.database_version == 1

    def test_cache_hit_on_repeat(self, service):
        first = service.execute(QueryRequest(query="swap", database="main"))
        second = service.execute(QueryRequest(query="swap", database="main"))
        assert not first.cache_hit and second.cache_hit
        assert second.relation is first.relation
        assert service.cache.stats().hits == 1

    def test_inline_term_and_database(self, db):
        service = QueryService()
        response = service.execute(
            QueryRequest(query=parse(SWAP), database=db, arity=2)
        )
        assert response.ok
        # Same content => same cache key, even as separate objects.
        copy = Database(db.relations)
        again = service.execute(
            QueryRequest(query=parse(SWAP), database=copy, arity=2)
        )
        assert again.cache_hit

    def test_engine_override_reports_steps(self, service):
        response = service.execute(
            QueryRequest(query="swap", database="main", engine="smallstep")
        )
        assert response.ok and response.steps > 0

    def test_unknown_engine_fails_fast(self, service):
        response = service.execute(
            QueryRequest(query="swap", database="main", engine="warp")
        )
        assert response.status == "error"
        assert "warp" in response.error

    def test_fuel_exhaustion_degrades_gracefully(self, service):
        response = service.execute(
            QueryRequest(
                query="swap", database="main", engine="smallstep", fuel=2
            )
        )
        assert response.status == "fuel_exhausted"
        assert response.steps == 2
        # The service keeps serving and never cached the failure.
        ok = service.execute(QueryRequest(query="swap", database="main"))
        assert ok.ok and not ok.cache_hit

    def test_arity_mismatch_is_an_error(self, service):
        response = service.execute(
            QueryRequest(query="swap", database="main", arity=3)
        )
        assert response.status == "error"

    def test_fixpoint_plan(self):
        service = QueryService()
        service.catalog.register_database(
            "graph", Database.of({"E": chain_graph_relation(5)})
        )
        service.catalog.register_query("tc", transitive_closure_query())
        response = service.execute(
            QueryRequest(query="tc", database="graph")
        )
        assert response.ok and response.engine == "fixpoint"
        assert response.stages is not None and response.stages >= 1
        from tests.conftest import transitive_closure

        expected = transitive_closure(chain_graph_relation(5))
        assert response.relation.as_set() == expected

    def test_fixpoint_engine_requires_spec(self, service):
        response = service.execute(
            QueryRequest(query="swap", database="main", engine="fixpoint")
        )
        assert response.status == "error"
        assert "fixpoint" in response.error

    def test_update_database_invalidates(self, service):
        first = service.execute(QueryRequest(query="swap", database="main"))
        new_db = Database.of(
            {
                "R1": Relation.from_tuples(2, [("o1", "o2")]),
                "R2": Relation.empty(2),
            }
        )
        service.update_database("main", new_db)
        second = service.execute(QueryRequest(query="swap", database="main"))
        assert not second.cache_hit
        assert second.database_version == 2
        assert second.relation.tuples == (("o2", "o1"),)
        assert first.relation.tuples != second.relation.tuples

    def test_timeout_response(self, service):
        # An untyped diverging term grinds through its (bounded) fuel for
        # roughly a second; the caller's 50ms deadline fires long before,
        # and the abandoned worker cannot outlive its budget.
        omega = parse(r"(\x. x x) (\x. x x)")
        start = time.perf_counter()
        response = service.execute(
            QueryRequest(
                query=omega, database="main", engine="smallstep",
                fuel=100_000, timeout_s=0.05,
            )
        )
        assert response.status == "timeout"
        assert time.perf_counter() - start < 0.5  # did not wait for fuel


class TestBatch:
    def test_batch_preserves_order_and_tags(self, service):
        requests = [
            QueryRequest(query="swap", database="main", tag=f"r{i}")
            for i in range(10)
        ]
        result = service.execute_batch(requests)
        assert [r.tag for r in result.responses] == [
            f"r{i}" for i in range(10)
        ]
        stats = result.stats
        assert stats["requests"] == 10
        assert stats["cache_misses"] == 1  # single-flight: one compute
        assert stats["cache_hits"] == 9
        assert stats["statuses"] == {"ok": 10}
        assert stats["latency_p50_ms"] >= 0
        assert stats["throughput_qps"] > 0

    def test_batch_mixed_statuses(self, service):
        requests = [
            QueryRequest(query="swap", database="main"),
            QueryRequest(query="missing", database="main"),
            QueryRequest(
                query="swap", database="main", engine="smallstep", fuel=1
            ),
        ]
        result = service.execute_batch(requests)
        statuses = [r.status for r in result.responses]
        assert statuses == ["ok", "error", "fuel_exhausted"]

    def test_service_stats_accumulate(self, service):
        service.execute_batch(
            [QueryRequest(query="swap", database="main")] * 4
        )
        stats = service.stats()
        assert stats["requests"] == 4
        assert stats["statuses"]["ok"] == 4


class TestEngineAgreement:
    """All engines agree with the reference small-step evaluator on the
    decoded relation (Church-Rosser + strong normalization)."""

    @pytest.mark.parametrize(
        "source", [SWAP, DIAG, INTERSECT], ids=["swap", "diag", "intersect"]
    )
    def test_term_engines_agree(self, source):
        db = random_database([2, 2], [6, 5], universe_size=5, seed=23)
        service = QueryService()
        service.catalog.register_database("main", db)
        service.catalog.register_query("q", parse(source), signature=SIG22)
        reference = service.execute(
            QueryRequest(query="q", database="main", engine="smallstep")
        )
        assert reference.ok
        for engine in ("nbe", "applicative"):
            response = service.execute(
                QueryRequest(query="q", database="main", engine=engine)
            )
            assert response.ok, response.error
            assert not response.cache_hit  # engine is part of the key
            assert response.relation.same_set(reference.relation)

    def test_fixpoint_agrees_with_whole_term_normalization(self):
        # Tiny instance: the PTIME stage evaluator must produce the same
        # decoded relation as normalizing the compiled TLI=1 tower whole.
        # (NBE agrees with the small-step reference on term queries above
        # and — at the normal-form level — in test_ptime_eval, closing the
        # chain back to the reference evaluator; running the tower through
        # the small-step engine directly is exactly the exponential blowup
        # Section 5 warns about.)
        db = Database.of(
            {"E": Relation.from_tuples(2, [("o1", "o2")])}
        )
        service = QueryService()
        service.catalog.register_database("g", db)
        service.catalog.register_query("tc", transitive_closure_query())
        staged = service.execute(QueryRequest(query="tc", database="g"))
        reference = service.execute(
            QueryRequest(
                query="tc", database="g", engine="nbe", arity=2,
                max_depth=2_000_000,
            )
        )
        assert staged.ok and reference.ok, (staged.error, reference.error)
        assert staged.relation.same_set(reference.relation)


class TestBatchSpeedup:
    """Acceptance: >=100 repeated/overlapping queries through the service
    run >=2x faster than the same workload through cold one-shot
    run_query calls, with full per-request stats."""

    def test_batch_beats_cold_one_shots(self):
        db = random_database([2, 2], [12, 10], universe_size=7, seed=42)
        suite = {
            "swap": parse(SWAP),
            "diag": parse(DIAG),
            "intersect": parse(INTERSECT),
            "join": build_ra_query(
                Base("R1").times(Base("R2")).where(ColumnEqualsColumn(1, 2)),
                ["R1", "R2"],
                {"R1": 2, "R2": 2},
            ),
            "union": build_ra_query(
                Base("R1").union(Base("R2")),
                ["R1", "R2"],
                {"R1": 2, "R2": 2},
            ),
        }
        service = QueryService()
        service.catalog.register_database("main", db)
        for name, term in suite.items():
            service.catalog.register_query(name, term, check=False)

        names = list(suite)
        requests = [
            QueryRequest(query=names[i % len(names)], database="main")
            for i in range(100)
        ]

        start = time.perf_counter()
        cold = [run_query(suite[names[i % len(names)]], db) for i in range(100)]
        cold_s = time.perf_counter() - start

        result = service.execute_batch(requests)
        batch_s = result.wall_ms / 1000.0

        # Per-request stats are present on every response.
        for response in result.responses:
            assert response.ok
            assert response.wall_ms >= 0
            assert response.engine == "nbe"
        stats = result.stats
        assert stats["requests"] == 100
        assert stats["cache_misses"] == len(suite)
        assert stats["cache_hits"] == 100 - len(suite)
        assert stats["hit_rate"] == pytest.approx(0.95)

        # Results agree with the one-shot reference path.
        for i, response in enumerate(result.responses):
            assert response.relation.same_set(cold[i].relation)

        assert cold_s / batch_s >= 2.0, (
            f"batch {batch_s * 1000:.1f}ms vs cold {cold_s * 1000:.1f}ms "
            f"(speedup {cold_s / batch_s:.2f}x < 2x)"
        )


class TestDriverWrapper:
    def test_run_query_validates_engine_before_encoding(self, db):
        with pytest.raises(EvaluationError, match="warp"):
            run_query(parse(SWAP), db, engine="warp")

    def test_run_query_matches_service(self, service, db):
        one_shot = run_query(parse(SWAP), db)
        served = service.execute(QueryRequest(query="swap", database="main"))
        assert one_shot.relation.same_set(served.relation)
        assert digest(one_shot.normal_form) == digest(served.normal_form)


class TestDatabaseDigest:
    def test_separator_bytes_in_values_cannot_collide(self):
        from repro.service.catalog import database_digest

        # Under a separator-joined serialization these two arity-2
        # relations serialize row bytes identically ("a\x1fb\x1fc"):
        left = Database.of(
            {"R": Relation.from_tuples(2, [("a\x1fb", "c")])}
        )
        right = Database.of(
            {"R": Relation.from_tuples(2, [("a", "b\x1fc")])}
        )
        assert database_digest(left) != database_digest(right)

    def test_name_boundary_cannot_collide(self):
        from repro.service.catalog import database_digest

        left = Database.of({"R\x002": Relation.empty(1)})
        right = Database.of({"R": Relation.empty(1)})
        assert database_digest(left) != database_digest(right)

    def test_row_split_cannot_collide(self):
        from repro.service.catalog import database_digest

        left = Database.of(
            {"R": Relation.from_tuples(1, [("a\x1eb",)])}
        )
        right = Database.of(
            {"R": Relation.from_tuples(1, [("a",), ("b",)])}
        )
        assert database_digest(left) != database_digest(right)

    def test_digest_is_deterministic_and_content_keyed(self):
        from repro.service.catalog import database_digest

        db = Database.of({"R": Relation.from_tuples(1, [("a",), ("b",)])})
        same = Database.of({"R": Relation.from_tuples(1, [("a",), ("b",)])})
        other = Database.of({"R": Relation.from_tuples(1, [("b",), ("a",)])})
        assert database_digest(db) == database_digest(same)
        # List order matters (Definition 3.4 equality is list equality).
        assert database_digest(db) != database_digest(other)


class TestCertifiedRegistration:
    def test_report_attached_with_certificates(self, db):
        catalog = Catalog()
        entry = catalog.register_query("swap", parse(SWAP), signature=SIG22)
        assert entry.report is not None and entry.report.ok
        assert entry.report.order == 3
        assert entry.report.fragment == "TLI=0"
        assert entry.cost is not None

    def test_order_budget_rejects_registration(self):
        catalog = Catalog()
        with pytest.raises(EvaluationError, match="TLI007"):
            catalog.register_query(
                "swap", parse(SWAP), signature=SIG22, max_order=2
            )
        assert "swap" not in [name for name, _ in catalog.queries()]

    def test_budget_at_order_passes(self):
        catalog = Catalog()
        entry = catalog.register_query(
            "swap", parse(SWAP), signature=SIG22, max_order=3
        )
        assert entry.report.ok

    def test_legacy_exceptions_preserved(self):
        catalog = Catalog()
        from repro.errors import TypeInferenceError

        with pytest.raises(TypeInferenceError):
            catalog.register_query("bad", parse(r"\x. x x"))
        with pytest.raises(QueryTermError):
            catalog.register_query(
                "wrong", parse(r"\R1. \R2. R1 (\x y T. x) o1"),
                signature=SIG22,
            )

    def test_summary_surfaces_warnings_and_cost(self, db):
        catalog = Catalog()
        # A registrable plan with a dead accumulator (warning, not error).
        dead = parse(r"\R1. \R2. \c. \n. R1 (\x y T. c x y n) n")
        entry = catalog.register_query("dead", dead, signature=SIG22)
        summary = entry.summary()
        assert summary["warnings"], summary
        assert any("TLI004" in warning for warning in summary["warnings"])
        assert "cost" in summary

    def test_database_entry_carries_stats(self, db):
        catalog = Catalog()
        entry = catalog.register_database("main", db)
        assert entry.stats is not None
        assert entry.stats.tuples == sum(
            len(relation.tuples) for _, relation in db
        )


class TestDerivedFuel:
    def test_response_reports_derived_budget(self, service):
        response = service.execute(
            QueryRequest(query="swap", database="main", engine="smallstep")
        )
        assert response.ok
        assert response.fuel_budget is not None
        assert response.steps <= response.fuel_budget
        assert "fuel_budget" in response.as_dict()

    def test_explicit_fuel_wins(self, service):
        response = service.execute(
            QueryRequest(
                query="swap", database="main", engine="smallstep", fuel=2
            )
        )
        assert response.status == "fuel_exhausted"
        assert response.fuel_budget == 2

    def test_cache_hit_preserves_budget(self, service):
        first = service.execute(QueryRequest(query="swap", database="main"))
        second = service.execute(QueryRequest(query="swap", database="main"))
        assert second.cache_hit
        assert second.fuel_budget == first.fuel_budget

    def test_uncertified_inline_plan_uses_default(self, db):
        from repro.service.runtime import DEFAULT_FUEL

        service = QueryService()
        response = service.execute(
            QueryRequest(
                query=parse(SWAP), database=db, arity=2, engine="smallstep"
            )
        )
        assert response.ok
        assert response.fuel_budget == DEFAULT_FUEL


class TestServiceClose:
    """Lifecycle regressions: close() must be idempotent, safe while
    requests are in flight, and must not let lazy pools resurrect."""

    def test_close_is_idempotent(self, service):
        assert not service.closed
        service.close()
        assert service.closed
        service.close()  # second close is a no-op, not an error
        assert service.closed

    def test_timed_request_after_close_is_an_error_response(self, service):
        service.close()
        response = service.execute(
            QueryRequest(query="swap", database="main", timeout_s=5.0)
        )
        assert response.status == "error"
        assert "closed" in response.error
        # The lazy timeout pool must not be resurrected by the request.
        assert service._timeout_pool is None

    def test_sharded_request_after_close_is_an_error_response(self, service):
        service.close()
        response = service.execute(
            QueryRequest(query="swap", database="main", shards=2)
        )
        assert response.status == "error"
        assert "closed" in response.error

    def test_close_with_inflight_requests(self, service):
        import threading

        started = threading.Event()
        release = threading.Event()
        original = service._serve

        def blocking_serve(request):
            started.set()
            assert release.wait(5.0)
            return original(request)

        service._serve = blocking_serve
        results = []

        def call():
            results.append(service.execute(
                QueryRequest(query="swap", database="main", timeout_s=10.0)
            ))

        threads = [threading.Thread(target=call) for _ in range(3)]
        for thread in threads:
            thread.start()
        assert started.wait(5.0)
        service.close()  # concurrent with the blocked evaluations
        release.set()
        for thread in threads:
            thread.join(10.0)
        # Every caller got a response object back, nothing raised
        # through execute().  Evaluations already running complete
        # normally; ones still queued when close() cancelled them are
        # folded into error responses.
        assert len(results) == 3
        assert all(r.status in ("ok", "error") for r in results)
        assert any(r.status == "ok" for r in results)
        assert all(
            "closed" in r.error for r in results if r.status == "error"
        )
        assert service.closed
