"""Tests for the sharded execution engine (partition, planner, pool,
service integration)."""

import pytest

from repro.db.decode import decode_relation
from repro.db.encode import encode_database
from repro.db.generators import random_database, random_relation
from repro.db.relations import Database, Relation
from repro.errors import ReproError
from repro.lam.parser import parse
from repro.queries.fixpoint import (
    FIX_NAME,
    FixpointQuery,
    fix,
    same_generation_query,
    transitive_closure_query,
)
from repro.queries.language import QueryArity
from repro.relalg.ast import Base, Difference, Product, Project, Union
from repro.service import Catalog, QueryRequest, QueryService, ShardPolicy
from repro.service.engines import evaluate_term_query
from repro.shard.partition import (
    canonical_relation,
    merge_relations,
    partition_database,
    partition_relation,
)
from repro.shard.planner import (
    CODE_DISTRIBUTABLE,
    CODE_LOCAL_ONLY,
    MODE_BROADCAST,
    MODE_LOCAL,
    MODE_PARTITIONABLE,
    plan_distribution,
    plan_term_distribution,
)
from repro.shard.policy import ShardPolicy as PolicyClass
from repro.shard.pool import ShardWorkerPool, execute_task


SIG1 = QueryArity((2,), 2)

#: Every partitionable single-input operator shape (satellite property
#: test): identity copy, column swap, diagonal projection, Eq-guarded
#: select, and a union of two parallel repeat folds of the same input.
PARTITIONABLE_OPS = {
    "copy": r"\R. \c. \n. R c n",
    "swap": r"\R. \c. \n. R (\x y T. c y x T) n",
    "diag": r"\R. \c. \n. R (\x y T. c x x T) n",
    "select": r"\R. \c. \n. R (\x y T. Eq x y (c x y T) T) n",
    "sym": r"\R. \c. \n. R (\x y T. c y x T) (R c n)",
}

SELF_JOIN = (
    r"\R. \c. \n. R (\x y T. R (\u v A. c x v A) T) n"
)


def evaluate_single(term, database):
    result = evaluate_term_query(term, encode_database(database))
    return decode_relation(result.normal_form, 2).relation


def evaluate_sharded_by_hand(term, database, shards, partitioner):
    parts = partition_database(
        database, shards, partitioner=partitioner,
        partition_names=list(database.names),
    )
    outputs = []
    for shard_db in parts:
        result = evaluate_term_query(term, encode_database(shard_db))
        outputs.append(decode_relation(result.normal_form, 2).relation)
    return merge_relations(outputs, arity=2)


class TestPartition:
    @pytest.mark.parametrize("partitioner", ["hash", "round_robin"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    def test_partition_covers_and_merges(self, shards, partitioner):
        relation = random_relation(2, 30, seed=5)
        parts = partition_relation(relation, shards, partitioner=partitioner)
        assert len(parts) == shards
        assert sum(len(p) for p in parts) == len(relation)
        merged = merge_relations(parts, arity=2)
        assert merged.tuples == canonical_relation(relation).tuples
        # Disjointness: no tuple lands on two shards.
        seen = set()
        for part in parts:
            tuples = set(part.tuples)
            assert not (seen & tuples)
            seen |= tuples

    def test_hash_partition_is_deterministic(self):
        relation = random_relation(2, 25, seed=9)
        first = partition_relation(relation, 4)
        second = partition_relation(relation, 4)
        assert [p.tuples for p in first] == [p.tuples for p in second]

    def test_partition_database_replicates_broadcast_relations(self):
        db = random_database([2, 2], [12, 7], seed=3)
        parts = partition_database(db, 3, partition_names=["R1"])
        assert len(parts) == 3
        for shard in parts:
            # R2 is broadcast: every shard holds the full relation.
            assert shard["R2"].tuples == db["R2"].tuples
        merged = merge_relations([s["R1"] for s in parts], arity=2)
        assert merged.tuples == canonical_relation(db["R1"]).tuples

    def test_unknown_partition_name_rejected(self):
        db = random_database([2], [5], seed=1)
        with pytest.raises(ReproError):
            partition_database(db, 2, partition_names=["missing"])

    def test_merge_rejects_mixed_arity(self):
        with pytest.raises(ReproError):
            merge_relations(
                [Relation.from_tuples(1, [("a",)]),
                 Relation.from_tuples(2, [("a", "b")])],
            )


class TestPlannerTerms:
    @pytest.mark.parametrize("name", sorted(PARTITIONABLE_OPS))
    def test_tuple_local_operators_are_partitionable(self, name):
        plan = plan_term_distribution(
            parse(PARTITIONABLE_OPS[name]), SIG1, input_names=["E"]
        )
        assert plan.mode == MODE_PARTITIONABLE
        assert plan.code == CODE_DISTRIBUTABLE
        assert plan.partition_names == ("E",)

    def test_self_join_is_local_only(self):
        plan = plan_term_distribution(
            parse(SELF_JOIN), SIG1, input_names=["E"]
        )
        assert plan.mode == MODE_LOCAL
        assert plan.code == CODE_LOCAL_ONLY

    def test_two_input_join_is_broadcast(self):
        product = (
            r"\R1. \R2. \c. \n. R1 (\x y T. R2 (\u v A. c x v A) T) n"
        )
        plan = plan_term_distribution(
            parse(product), QueryArity((2, 2), 2),
            input_names=["R1", "R2"],
        )
        assert plan.mode == MODE_BROADCAST
        assert plan.code == CODE_DISTRIBUTABLE
        # Either side may be split on its own — never both at once
        # (that would be a sharded join).
        assert set(plan.partition_names) == {"R1", "R2"}

    def test_accumulator_dropping_join_is_conservatively_local(self):
        # The Eq-short-circuit intersection drops the inner accumulator
        # in its match branch; the chain grammar rejects it.
        intersect = (
            r"\R1. \R2. \c. \n. R1 (\x y T. "
            r"R2 (\u v A. Eq x u (Eq y v (c x y T) A) A) T) n"
        )
        plan = plan_term_distribution(
            parse(intersect), QueryArity((2, 2), 2),
            input_names=["R1", "R2"],
        )
        assert plan.mode == MODE_LOCAL
        assert plan.code == CODE_LOCAL_ONLY

    def test_no_signature_means_local_only(self):
        plan = plan_term_distribution(
            parse(PARTITIONABLE_OPS["swap"]), None
        )
        assert plan.mode == MODE_LOCAL
        assert "signature" in plan.reason

    def test_choose_partition_modes(self):
        db = random_database([2, 2], [10, 4], seed=2)
        partitionable = plan_term_distribution(
            parse(PARTITIONABLE_OPS["swap"]), SIG1, input_names=["R1"]
        )
        assert partitionable.choose_partition(db) == ("R1",)
        local = plan_term_distribution(parse(SELF_JOIN), SIG1)
        with pytest.raises(ReproError):
            local.choose_partition(db)


class TestPlannerFixpoints:
    def test_transitive_closure_is_partitionable(self):
        plan = plan_distribution(transitive_closure_query("E"))
        assert plan.mode == MODE_PARTITIONABLE
        assert plan.code == CODE_DISTRIBUTABLE
        assert plan.partition_names == ("E",)
        assert FIX_NAME in plan.broadcast_names

    def test_same_generation_classified(self):
        plan = plan_distribution(same_generation_query("P"))
        # The sg step joins P against the stage relation and P again —
        # whatever the verdict, it must carry a stable code.
        assert plan.code in (CODE_DISTRIBUTABLE, CODE_LOCAL_ONLY)
        assert plan.mode in (MODE_BROADCAST, MODE_LOCAL)

    def test_self_product_step_is_local_only(self):
        query = FixpointQuery.of(
            Product(Base("E"), Base("E")), 4, {"E": 2}
        )
        plan = plan_distribution(query)
        assert plan.mode == MODE_LOCAL
        assert plan.code == CODE_LOCAL_ONLY

    def test_difference_right_usage_is_local_only(self):
        query = FixpointQuery.of(
            Difference(fix(), Base("E")), 2, {"E": 2}
        )
        plan = plan_distribution(query)
        assert plan.mode == MODE_LOCAL

    def test_one_sided_join_is_broadcast(self):
        step = Union(
            Base("E"),
            Project(Product(Base("E"), fix()), (0, 3)),
        )
        plan = plan_distribution(FixpointQuery.of(step, 2, {"E": 2}))
        assert plan.mode == MODE_PARTITIONABLE
        assert plan.partition_names == ("E",)


class TestShardedEquivalence:
    """Satellite: partition -> per-shard evaluate -> merge equals the
    single-shard evaluation, over random databases, every partitionable
    operator, k in {1, 2, 3, 7}, and both partitioners."""

    @pytest.mark.parametrize("partitioner", ["hash", "round_robin"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    @pytest.mark.parametrize("name", sorted(PARTITIONABLE_OPS))
    def test_shard_merge_equals_single(self, name, shards, partitioner):
        term = parse(PARTITIONABLE_OPS[name])
        for seed in (11, 23):
            db = random_database(
                [2], [14], universe_size=6, seed=seed + shards
            )
            single = canonical_relation(evaluate_single(term, db))
            merged = evaluate_sharded_by_hand(term, db, shards, partitioner)
            assert merged.tuples == single.tuples, (name, shards, seed)


class TestPolicy:
    def test_policy_validates(self):
        assert PolicyClass(shards=2).partitioner == "hash"
        with pytest.raises(ReproError):
            PolicyClass(shards=0)
        with pytest.raises(ReproError):
            PolicyClass(shards=2, fallback="panic")

    def test_service_reexports_policy(self):
        assert ShardPolicy is PolicyClass


class TestWorkerPool:
    def test_ping_and_task_roundtrip(self):
        with ShardWorkerPool(2) as pool:
            assert pool.ping() == [True, True]
            reply = pool.run_task({"kind": "ping"})
            assert reply["ok"] and reply["_meta"]["degraded"] is False

    def test_crash_recovery_mid_batch(self):
        """Satellite: a killed worker never surfaces as an exception —
        the batch returns one reply per task, the retry counter moves,
        and the worker is respawned."""
        events = []
        db = random_database([2], [6], seed=4)
        term = parse(PARTITIONABLE_OPS["swap"])
        with ShardWorkerPool(2, observer=events.append) as pool:
            pool.ping()
            pool.inject_crash(0)
            tasks = [
                {
                    "kind": "term",
                    "db_digest": f"d{i}",
                    "database": db,
                    "term": term,
                    "arity": 2,
                }
                for i in range(4)
            ]
            replies = pool.run_batch(tasks)
            assert len(replies) == 4
            assert all(r["ok"] for r in replies)
            assert all(not isinstance(r, Exception) for r in replies)
            # The dead worker's first task crashed and was retried.
            assert events.count("crash") >= 1
            assert events.count("retry") >= 1
            assert any(r["_meta"]["retries"] > 0 for r in replies)
            assert max(pool.respawn_counts()) >= 1

    def test_exhausted_retries_degrade_in_process(self):
        events = []
        with ShardWorkerPool(1, max_retries=1, backoff_s=0.01,
                             observer=events.append) as pool:
            # A "crash" task kills the worker before it replies, every
            # attempt — retries exhaust and the pool degrades in-process
            # (where the unknown kind becomes an error reply, not a
            # crash).
            reply = pool.run_task({"kind": "crash"})
            assert reply["_meta"]["degraded"] is True
            assert reply["_meta"]["retries"] == 2
            assert "degraded" in events

    def test_execute_task_reports_errors_as_replies(self):
        reply = execute_task({"kind": "nonsense"})
        assert reply["ok"] is False
        assert "unknown task kind" in reply["error"]

    def test_concurrent_tasks_never_cross_replies(self):
        """Regression: the pool is shared across concurrent requests, so
        the per-worker slot lock must keep each send/recv pair atomic —
        two threads hammering one worker must each get their own query's
        result back, never the other's."""
        import threading

        db = random_database([2], [8], seed=11)
        term = parse(PARTITIONABLE_OPS["swap"])
        errors = []
        with ShardWorkerPool(1) as pool:
            reference = pool.run_task(
                {"kind": "term", "db_digest": "ref", "database": db,
                 "term": term, "arity": 2}
            )
            assert reference["ok"]
            expected = sorted(reference["tuples"])

            def hammer(thread_id, rounds):
                for _ in range(rounds):
                    reply = pool.run_task(
                        {"kind": "term", "db_digest": f"t{thread_id}",
                         "database": db, "term": term, "arity": 2}
                    )
                    if (
                        not reply["ok"]
                        or reply["arity"] != 2
                        or sorted(reply["tuples"]) != expected
                    ):
                        errors.append((thread_id, reply))

            threads = [
                threading.Thread(target=hammer, args=(t, 10))
                for t in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []

    def test_closed_pool_batch_stays_aligned(self):
        """Regression: coordinator-side failures (here a closed pool) must
        come back as error replies at their task's position, never as a
        shorter reply list."""
        pool = ShardWorkerPool(2)
        pool.close()
        tasks = [{"kind": "ping"} for _ in range(3)]
        replies = pool.run_batch(tasks)
        assert len(replies) == 3
        assert all(r["ok"] is False for r in replies)
        assert all("closed" in r["error"] for r in replies)


@pytest.fixture
def shard_service():
    catalog = Catalog()
    catalog.register_database(
        "main", random_database([2], [16], universe_size=6, seed=7)
    )
    catalog.register_query(
        "swap", parse(PARTITIONABLE_OPS["swap"]), signature=SIG1
    )
    catalog.register_query("tc", transitive_closure_query("E"))
    edges = Relation.from_tuples(
        2, [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]
    )
    catalog.register_database(
        "graph", Database.of({"E": edges})
    )
    service = QueryService(catalog)
    yield service
    service.close()


class TestServiceSharding:
    def test_sharded_term_matches_local(self, shard_service):
        local = shard_service.execute(
            QueryRequest(query="swap", database="main")
        )
        sharded = shard_service.execute(
            QueryRequest(query="swap", database="main", shards=3)
        )
        assert local.ok and sharded.ok
        assert (
            canonical_relation(sharded.relation).tuples
            == canonical_relation(local.relation).tuples
        )
        shard_info = sharded.profile["shard"]
        assert shard_info["mode"] == MODE_PARTITIONABLE
        assert shard_info["code"] == CODE_DISTRIBUTABLE
        assert len(shard_info["rows"]) == 3
        for row in shard_info["rows"]:
            if row.get("bound_ratio") is not None:
                assert row["bound_ratio"] <= 1.0

    def test_sharded_fixpoint_matches_local(self, shard_service):
        local = shard_service.execute(
            QueryRequest(query="tc", database="graph")
        )
        sharded = shard_service.execute(
            QueryRequest(query="tc", database="graph", shards=2)
        )
        assert local.ok and sharded.ok
        assert (
            canonical_relation(sharded.relation).tuples
            == canonical_relation(local.relation).tuples
        )
        assert sharded.stages == local.stages

    def test_sharded_and_local_cache_keys_are_distinct(self, shard_service):
        request = QueryRequest(query="swap", database="main", shards=2)
        first = shard_service.execute(request)
        assert not first.cache_hit
        # A local request after a sharded one must not hit its entry.
        local = shard_service.execute(
            QueryRequest(query="swap", database="main")
        )
        assert not local.cache_hit
        again = shard_service.execute(request)
        assert again.cache_hit
        assert again.relation.tuples == first.relation.tuples

    def test_local_fallback_for_unshardable_plans(self, shard_service):
        shard_service.catalog.register_query(
            "selfjoin", parse(SELF_JOIN), signature=SIG1
        )
        response = shard_service.execute(
            QueryRequest(query="selfjoin", database="main", shards=2)
        )
        assert response.ok
        assert "shard" not in (response.profile or {})

    def test_error_fallback_policy_refuses(self, shard_service):
        shard_service.catalog.register_query(
            "selfjoin2", parse(SELF_JOIN), signature=SIG1
        )
        response = shard_service.execute(
            QueryRequest(
                query="selfjoin2",
                database="main",
                shard_policy=ShardPolicy(shards=2, fallback="error"),
            )
        )
        assert not response.ok
        assert "shard" in (response.error or "").lower()

    def test_shard_metrics_populate(self, shard_service):
        shard_service.execute(
            QueryRequest(query="swap", database="main", shards=2)
        )
        requests = shard_service.registry.get("repro_shard_requests_total")
        tasks = shard_service.registry.get("repro_shard_tasks_total")
        workers = shard_service.registry.get("repro_shard_workers")
        assert requests.value(mode=MODE_PARTITIONABLE) == 1
        assert tasks.value() >= 2
        assert workers.value() == 2

    def test_batch_survives_worker_crash(self, shard_service):
        """Satellite: killing a pool worker mid-stream never surfaces as
        an exception from execute_batch."""
        warm = shard_service.execute(
            QueryRequest(query="swap", database="main", shards=2)
        )
        assert warm.ok
        pool = shard_service._shard_pool
        assert pool is not None
        pool.inject_crash(0)
        # Distinct plans give distinct cache keys, so every request
        # really reaches the pool.
        names = []
        for name, source in sorted(PARTITIONABLE_OPS.items()):
            if name == "swap":
                continue
            shard_service.catalog.register_query(
                f"batch_{name}", parse(source), signature=SIG1
            )
            names.append(f"batch_{name}")
        batch = shard_service.execute_batch(
            [
                QueryRequest(
                    query=name, database="main", shards=2, tag=name
                )
                for name in names
            ]
        )
        assert len(batch.responses) == len(names)
        assert [r.tag for r in batch.responses] == names
        assert all(r.ok for r in batch.responses)
        crashes = shard_service.registry.get(
            "repro_shard_worker_crashes_total"
        )
        retries = shard_service.registry.get("repro_shard_retries_total")
        assert crashes.value() >= 1
        assert retries.value() >= 1


class TestTimeoutPoolReuse:
    """Satellite: one long-lived deadline-watch pool per service, not a
    fresh ThreadPoolExecutor per timed request."""

    def test_timed_requests_share_one_executor(self, shard_service):
        assert shard_service._timeout_pool is None
        first = shard_service.execute(
            QueryRequest(query="swap", database="main", timeout_s=30.0)
        )
        pool = shard_service._timeout_pool
        assert first.ok and pool is not None
        shard_service.execute(
            QueryRequest(
                query="swap", database="main", timeout_s=30.0,
                fuel=123_456,
            )
        )
        assert shard_service._timeout_pool is pool

    def test_close_shuts_the_executor_down(self):
        service = QueryService()
        service.catalog.register_database(
            "main", random_database([2], [4], seed=1)
        )
        service.execute(
            QueryRequest(
                query=parse(r"\R. \c. \n. R c n"), database="main",
                arity=2, timeout_s=30.0,
            )
        )
        pool = service._timeout_pool
        assert pool is not None
        service.close()
        assert pool._shutdown

    def test_context_manager_closes(self):
        with QueryService() as service:
            service.catalog.register_database(
                "main", random_database([2], [4], seed=2)
            )
            response = service.execute(
                QueryRequest(
                    query=parse(r"\R. \c. \n. R c n"), database="main",
                    arity=2, timeout_s=30.0,
                )
            )
            assert response.ok
            pool = service._timeout_pool
            assert pool is not None
        assert pool._shutdown
