"""Verified plan simplifier: rewrite rules + NBE differential checks.

Every rewrite the simplifier performs must be meaning-preserving.  The
deterministic tests pin each rule (dead-binding elimination, trivial and
single-use inlining, duplicate-subterm factoring) and check the rewritten
plan is beta-eta equal to the original via NBE.  The differential tests
then run original and simplified plans side by side on encoded databases
— over the operator library, the benchmark suite, and random
Datalog-compiled step terms — and require identical decoded relations.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.corpus import operator_library_targets
from repro.analysis.simplify import simplify_term
from repro.datalog.compile import datalog_to_fixpoint
from repro.db.decode import decode_relation
from repro.db.encode import encode_relation
from repro.db.generators import random_graph_relation
from repro.db.relations import Relation
from repro.lam.alpha import alpha_equal
from repro.lam.nbe import nbe_normalize
from repro.lam.parser import parse
from repro.lam.terms import Let, app, free_vars, lam, subterms, term_size
from repro.queries.fixpoint import FIX_NAME
from repro.queries.relalg_compile import compile_ra

from tests.test_fixpoint_random import random_programs

# ---------------------------------------------------------------------------
# Deterministic rewrite-rule tests (each NBE-differentially verified).
# ---------------------------------------------------------------------------


def _nbe_equal(before, after) -> bool:
    return alpha_equal(nbe_normalize(before), nbe_normalize(after))


class TestRewriteRules:
    def test_dead_let_is_eliminated(self):
        term = parse(r"\R. let junk = R (\x. \y. \T. T) R in \c. \n. R c n")
        out = simplify_term(term)
        assert out.changed
        assert len(out.dead_bindings) >= 1
        assert not any(isinstance(sub, Let) for sub in subterms(out.term))
        assert _nbe_equal(term, out.term)

    def test_trivial_binding_is_inlined(self):
        term = parse(r"\R. let alias = R in \c. \n. alias (\x. \y. \T. c y x T) (alias c n)")
        out = simplify_term(term)
        assert out.changed
        assert len(out.inlined) >= 1
        assert not any(isinstance(sub, Let) for sub in subterms(out.term))
        assert _nbe_equal(term, out.term)

    def test_single_use_binding_is_inlined(self):
        term = parse(r"\R. \c. \n. let once = R (\x. \y. \T. c y x T) n in once")
        out = simplify_term(term)
        assert out.changed
        assert len(out.inlined) >= 1
        assert not any(isinstance(sub, Let) for sub in subterms(out.term))
        assert _nbe_equal(term, out.term)

    def test_single_use_under_binder_is_kept(self):
        # `once` is used once, but under a lambda: inlining would re-evaluate
        # the fold every time the lambda is applied, so the binding stays.
        term = parse(
            r"\R. \c. \n."
            r" let once = R (\x. \y. \T. c y x T) n in"
            r" R (\x. \y. \T. once) n"
        )
        out = simplify_term(term)
        assert any(isinstance(sub, Let) for sub in subterms(out.term))
        assert _nbe_equal(term, out.term)

    def test_duplicate_subterm_is_factored(self):
        # The fold `R (\x. \y. \T. c y x T) n` appears twice; the simplifier
        # should hoist one shared copy under the binder prefix.
        dup = r"(R (\x. \y. \T. c y x T) (R (\u. \v. \T2. c u u T2) n))"
        term = parse(rf"\R. \c. \n. Eq {dup} {dup} {dup} n")
        out = simplify_term(term)
        assert out.changed
        assert len(out.factored) >= 1
        assert term_size(out.term) < term_size(term)
        assert any(isinstance(sub, Let) for sub in subterms(out.term))
        assert _nbe_equal(term, out.term)

    def test_clean_plan_is_untouched(self):
        term = parse(r"\R. \c. \n. R (\x. \y. \T. c y x T) n")
        out = simplify_term(term)
        assert not out.changed
        assert out.term is term


# ---------------------------------------------------------------------------
# Differential checks on real plans: original vs simplified on encoded data.
# ---------------------------------------------------------------------------

_GRAPH = Relation.from_any_order(
    2, [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")]
)
_VERTS = Relation.unary(["a", "b", "c"])


def _relation_for_arity(arity: int) -> Relation:
    return _VERTS if arity == 1 else _GRAPH


def _run_plan(plan, relations, arity):
    applied = app(plan, *[encode_relation(rel) for rel in relations])
    return decode_relation(nbe_normalize(applied), arity=arity).relation


def test_operator_library_simplification_is_meaning_preserving():
    checked = 0
    for target in operator_library_targets():
        if target.signature is None:
            continue
        out = simplify_term(target.plan)
        if not out.changed:
            continue
        inputs = [
            _relation_for_arity(arity) for arity in target.signature.inputs
        ]
        original = _run_plan(target.plan, inputs, target.signature.output)
        simplified = _run_plan(out.term, inputs, target.signature.output)
        assert original.same_set(simplified), target.name
        checked += 1
    # The library is already written in simplified style; the loop is a
    # regression net, not a coverage requirement.
    assert checked >= 0


_BENCH_PLANS = {
    "identity": (r"\R1. \R2. R1", (2, 2), 2),
    "swap": (r"\R1. \R2. \c. \n. R1 (\x y T. c y x T) n", (2, 2), 2),
    "diagonal": (
        r"\R1. \R2. \c. \n. R1 (\x y T. Eq x y (c x x T) T) n",
        (2, 2),
        2,
    ),
    "let_heavy": (
        r"\R1. \R2. let dead = R2 in"
        r" let alias = R1 in \c. \n. alias (\x y T. c y x T) n",
        (2, 2),
        2,
    ),
}


def test_bench_suite_simplification_is_meaning_preserving():
    for name, (source, arities, output) in _BENCH_PLANS.items():
        plan = parse(source)
        out = simplify_term(plan)
        inputs = [_relation_for_arity(arity) for arity in arities]
        original = _run_plan(plan, inputs, output)
        simplified = _run_plan(out.term, inputs, output)
        assert original.same_set(simplified), name
    # The let_heavy plan must actually exercise both let rules.
    out = simplify_term(parse(_BENCH_PLANS["let_heavy"][0]))
    assert out.changed and len(out.dead_bindings) >= 1


# ---------------------------------------------------------------------------
# Property test: random Datalog step terms, simplified vs original.
# ---------------------------------------------------------------------------

@given(random_programs(), st.integers(min_value=0, max_value=300))
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_step_terms_simplify_differentially(program, seed):
    """compile_ra step plans — what the catalog simplifies — round-trip."""
    query = datalog_to_fixpoint(program)
    schema = dict(query.schema())
    schema[FIX_NAME] = query.output_arity
    body = compile_ra(query.effective_step(), schema)
    names = [name for name in ("e", "v", FIX_NAME) if name in free_vars(body)]
    plan = lam(names, body)
    out = simplify_term(plan)

    graph = random_graph_relation(4, 0.35, seed=seed)
    vertices = Relation.unary(
        sorted({value for row in graph.tuples for value in row}) or ["o1"]
    )
    rows = list(graph.tuples)
    stage = Relation.from_any_order(2, rows[: max(1, len(rows) // 2)])
    by_name = {"e": graph, "v": vertices, FIX_NAME: stage}
    inputs = [by_name[name] for name in names]

    original = _run_plan(plan, inputs, query.output_arity)
    simplified = _run_plan(out.term, inputs, query.output_arity)
    assert original.same_set(simplified), str(program)
