"""Unit and property tests for capture-avoiding substitution."""

from hypothesis import given

from repro.lam.alpha import alpha_equal
from repro.lam.subst import rename_bound, substitute, substitute_many
from repro.lam.terms import (
    Abs,
    App,
    Const,
    Let,
    Var,
    app,
    bound_vars,
    free_vars,
    lam,
)
from tests.conftest import untyped_terms


class TestBasicSubstitution:
    def test_free_occurrence(self):
        assert substitute(Var("x"), "x", Const("o1")) == Const("o1")

    def test_unrelated_variable(self):
        assert substitute(Var("y"), "x", Const("o1")) == Var("y")

    def test_under_binder(self):
        term = Abs("y", Var("x"))
        assert substitute(term, "x", Const("o1")) == Abs("y", Const("o1"))

    def test_shadowed_not_substituted(self):
        term = Abs("x", Var("x"))
        assert substitute(term, "x", Const("o1")) == term

    def test_capture_avoidance(self):
        # (λy. x)[x := y] must NOT become λy. y.
        term = Abs("y", Var("x"))
        result = substitute(term, "x", Var("y"))
        assert isinstance(result, Abs)
        assert result.var != "y"
        assert result.body == Var("y")

    def test_capture_avoidance_deep(self):
        # (λy. λz. x y z)[x := y z]
        term = lam(["y", "z"], app(Var("x"), Var("y"), Var("z")))
        result = substitute(term, "x", app(Var("y"), Var("z")))
        assert free_vars(result) == {"y", "z"}
        # The free y/z of the payload must remain free.
        assert alpha_equal(
            result,
            lam(
                ["a", "b"],
                app(app(Var("y"), Var("z")), Var("a"), Var("b")),
            ),
        )

    def test_let_bound_substitution(self):
        term = Let("y", Var("x"), app(Var("y"), Var("x")))
        result = substitute(term, "x", Const("o1"))
        assert result == Let(
            "y", Const("o1"), app(Var("y"), Const("o1"))
        )

    def test_let_shadowing(self):
        term = Let("x", Var("x"), Var("x"))
        result = substitute(term, "x", Const("o1"))
        # The bound expression's x is free, the body's is bound.
        assert result == Let("x", Const("o1"), Var("x"))


class TestSimultaneousSubstitution:
    def test_swap(self):
        term = app(Var("x"), Var("y"))
        result = substitute_many(term, {"x": Var("y"), "y": Var("x")})
        assert result == app(Var("y"), Var("x"))

    def test_sequential_differs_from_simultaneous(self):
        term = app(Var("x"), Var("y"))
        sequential = substitute(
            substitute(term, "x", Var("y")), "y", Var("x")
        )
        simultaneous = substitute_many(
            term, {"x": Var("y"), "y": Var("x")}
        )
        assert sequential != simultaneous

    def test_identity_bindings_are_dropped(self):
        term = Abs("y", Var("x"))
        assert substitute_many(term, {"x": Var("x")}) is term


class TestSubstitutionProperties:
    @given(untyped_terms())
    def test_substituting_fresh_var_changes_nothing(self, term):
        result = substitute(term, "completely_fresh_variable", Const("o1"))
        assert alpha_equal(result, term)

    @given(untyped_terms())
    def test_free_vars_after_substitution(self, term):
        result = substitute(term, "x", Const("o1"))
        assert "x" not in free_vars(result)

    @given(untyped_terms())
    def test_substitution_by_closed_term_never_captures(self, term):
        payload = Abs("w", Const("o2"))
        result = substitute(term, "x", payload)
        assert free_vars(result) == free_vars(term) - {"x"}


class TestRenameBound:
    @given(untyped_terms())
    def test_rename_is_alpha_equal(self, term):
        assert alpha_equal(rename_bound(term), term)

    @given(untyped_terms())
    def test_rename_makes_binders_unique(self, term):
        renamed = rename_bound(term)
        names = []

        def collect(node):
            from repro.lam.terms import Abs, App, Let

            if isinstance(node, Abs):
                names.append(node.var)
                collect(node.body)
            elif isinstance(node, App):
                collect(node.fn)
                collect(node.arg)
            elif isinstance(node, Let):
                names.append(node.var)
                collect(node.bound)
                collect(node.body)

        collect(renamed)
        assert len(names) == len(set(names))

    @given(untyped_terms())
    def test_rename_binders_avoid_free_vars(self, term):
        renamed = rename_bound(term)
        assert not (bound_vars(renamed) & free_vars(renamed))

    def test_rename_avoids_requested_names(self):
        term = Abs("x", Var("x"))
        renamed = rename_bound(term, avoid=["x"])
        assert isinstance(renamed, Abs) and renamed.var != "x"
