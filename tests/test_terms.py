"""Unit tests for the term syntax layer (repro.lam.terms)."""

import pytest
from hypothesis import given

from repro.lam.terms import (
    Abs,
    App,
    Const,
    EqConst,
    Let,
    Var,
    abs_many,
    app,
    binder_prefix,
    bound_vars,
    constants_of,
    contains_let,
    expand_lets,
    free_vars,
    lam,
    let,
    spine,
    subterms,
    term_size,
)
from tests.conftest import untyped_terms


class TestConstructors:
    def test_lam_single_name(self):
        term = lam("x", Var("x"))
        assert term == Abs("x", Var("x"))

    def test_lam_multiple(self):
        term = lam(["x", "y"], Var("x"))
        assert term == Abs("x", Abs("y", Var("x")))

    def test_lam_accepts_var_objects(self):
        assert lam(Var("x"), Var("x")) == Abs("x", Var("x"))

    def test_app_left_nested(self):
        term = app(Var("f"), Var("a"), Var("b"))
        assert term == App(App(Var("f"), Var("a")), Var("b"))

    def test_call_sugar(self):
        assert Var("f")(Var("a"), Var("b")) == app(
            Var("f"), Var("a"), Var("b")
        )

    def test_let_constructor(self):
        term = let("x", Var("y"), Var("x"))
        assert term == Let("x", Var("y"), Var("x"))

    def test_annotations_do_not_affect_equality(self):
        from repro.types.types import O

        assert Abs("x", Var("x"), O) == Abs("x", Var("x"))

    def test_abs_many(self):
        assert abs_many(["a", "b"], Var("a")) == lam(["a", "b"], Var("a"))


class TestFreeAndBoundVars:
    def test_var_is_free(self):
        assert free_vars(Var("x")) == {"x"}

    def test_abs_binds(self):
        assert free_vars(Abs("x", Var("x"))) == frozenset()
        assert free_vars(Abs("x", Var("y"))) == {"y"}

    def test_let_binds_body_only(self):
        term = Let("x", Var("x"), Var("x"))
        # The bound expression's x is free (let is not letrec).
        assert free_vars(term) == {"x"}

    def test_constants_are_not_variables(self):
        assert free_vars(Const("o1")) == frozenset()
        assert free_vars(EqConst()) == frozenset()

    def test_bound_vars(self):
        term = Abs("x", Let("y", Var("x"), Var("y")))
        assert bound_vars(term) == {"x", "y"}

    def test_shadowing(self):
        term = Abs("x", Abs("x", Var("x")))
        assert free_vars(term) == frozenset()


class TestObservations:
    def test_subterms_count_matches_size(self):
        term = app(Abs("x", Var("x")), Const("o1"))
        assert len(list(subterms(term))) == term_size(term)

    def test_term_size(self):
        assert term_size(Var("x")) == 1
        assert term_size(app(Var("f"), Var("x"))) == 3
        assert term_size(Abs("x", Var("x"))) == 2

    def test_spine(self):
        head, args = spine(app(Var("f"), Var("a"), Var("b")))
        assert head == Var("f")
        assert args == (Var("a"), Var("b"))

    def test_spine_of_non_application(self):
        head, args = spine(Var("x"))
        assert head == Var("x") and args == ()

    def test_binder_prefix(self):
        names, body = binder_prefix(lam(["a", "b", "c"], Var("a")))
        assert names == ("a", "b", "c")
        assert body == Var("a")

    def test_constants_of(self):
        term = app(EqConst(), Const("o1"), Const("o2"))
        assert constants_of(term) == {"o1", "o2"}


class TestLets:
    def test_contains_let(self):
        assert contains_let(Let("x", Var("y"), Var("x")))
        assert not contains_let(Abs("x", Var("x")))

    def test_expand_lets_simple(self):
        term = Let("x", Const("o1"), app(Var("f"), Var("x"), Var("x")))
        assert expand_lets(term) == app(Var("f"), Const("o1"), Const("o1"))

    def test_expand_lets_nested(self):
        term = Let("x", Const("o1"), Let("y", Var("x"), Var("y")))
        assert expand_lets(term) == Const("o1")

    def test_expand_lets_shadowing(self):
        term = Let("x", Const("o1"), Abs("x", Var("x")))
        assert expand_lets(term) == Abs("x", Var("x"))

    @given(untyped_terms())
    def test_expand_lets_removes_all_lets(self, term):
        assert not contains_let(expand_lets(term))

    @given(untyped_terms())
    def test_expand_lets_no_new_free_vars(self, term):
        assert free_vars(expand_lets(term)) <= free_vars(term)


class TestHashability:
    def test_terms_usable_in_sets(self):
        terms = {Var("x"), Var("x"), Const("o1"), Abs("x", Var("x"))}
        assert len(terms) == 3

    def test_immutability(self):
        term = Var("x")
        with pytest.raises(Exception):
            term.name = "y"  # type: ignore[misc]
