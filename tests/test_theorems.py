"""Integration tests: the paper's four main theorems, end to end.

Each test runs one theorem's full pipeline on randomized inputs:

* Theorem 4.1 — FO-query -> RA -> TLI=0 term -> reduction == FO baseline;
* Theorem 5.1 — TLI=0 term -> canonical form -> FO formula == reduction;
* Theorem 4.2 — fixpoint query -> TLI=1/MLI=1 term, recognized at order 4;
* Theorem 5.2 — the polynomial evaluator == Datalog baseline == reduction.
"""

import pytest

from repro.datalog.ast import Literal, Program, RVar, Rule
from repro.datalog.compile import datalog_to_fixpoint
from repro.datalog.engine import evaluate_program
from repro.db.generators import random_database, random_graph_relation
from repro.db.relations import Database
from repro.eval.driver import run_query
from repro.eval.fo_translation import translate_query
from repro.eval.materialize import run_ra_query_materialized
from repro.eval.ptime import run_fixpoint_query
from repro.folog.evaluate import evaluate_fo_query
from repro.folog.formulas import Atom, Exists, FVar, Forall, Not, Or
from repro.queries.fixpoint import build_fixpoint_query, transitive_closure_query
from repro.queries.fo_compile import compile_fo
from repro.queries.language import (
    QueryArity,
    is_mli_query_term,
    is_tli_query_term,
)
from repro.queries.relalg_compile import build_ra_query
from repro.relalg.ast import schema_with_derived
from tests.conftest import transitive_closure

SCHEMA = {"R1": 2, "R2": 2}
x, y, z = FVar("x"), FVar("y"), FVar("z")

FO_SUITE = [
    # (formula, output variables)
    (Exists("y", Atom("R1", (x, y)) & Atom("R2", (y, z))), ["x", "z"]),
    (Forall("y", Or(Not(Atom("R1", (x, y))), Atom("R2", (x, y)))), ["x"]),
    (Atom("R1", (x, y)) & ~Atom("R2", (x, y)), ["x", "y"]),
]


class TestTheorem41:
    """Every FO-query is a TLI=0 (MLI=0) query."""

    @pytest.mark.parametrize("index", range(len(FO_SUITE)))
    def test_fo_query_expressible_in_tli0(self, index):
        formula, output = FO_SUITE[index]
        expr = compile_fo(formula, output, SCHEMA)
        query = build_ra_query(expr, ["R1", "R2"], SCHEMA)
        signature = QueryArity((2, 2), len(output))
        # Membership in both languages (Definition 3.7 / 3.8).
        assert is_tli_query_term(query, signature, 0)
        assert is_mli_query_term(query, signature, 0)
        # Same relation on random inputs.
        for seed in (1, 2):
            db = random_database(
                [2, 2], [4, 3], universe_size=3, seed=seed
            )
            expected = evaluate_fo_query(formula, output, db)
            got = run_ra_query_materialized(expr, db).relation
            assert got.same_set(expected)


class TestTheorem51:
    """Every TLI=0 (MLI=0) query is an FO-query.

    The Section 5.2 translation is data-independent but its formula grows
    exponentially with the query's iteration-nesting depth (PassThrough
    duplicates the loop body), so the integration pipeline here uses
    shallow queries; breadth is covered in tests/test_fo_translation.py.
    """

    SHALLOW = [
        (Atom("R1", (x, y)), ["x", "y"]),
        (Atom("R1", (x, x)), ["x"]),
        (Atom("R1", (x, FVar("y"))) , ["y", "x"]),
    ]

    @pytest.mark.parametrize("index", range(len(SHALLOW)))
    def test_tli0_query_expressible_in_fo(self, index):
        formula, output = self.SHALLOW[index]
        expr = compile_fo(formula, output, SCHEMA)
        query = build_ra_query(expr, ["R1", "R2"], SCHEMA)
        translation = translate_query(
            query, QueryArity((2, 2), len(output))
        )
        db = random_database([2, 2], [3, 3], universe_size=3, seed=3)
        direct = run_ra_query_materialized(expr, db).relation
        assert translation.evaluate(db).same_set(direct)

    def test_round_trip_through_both_theorems(self):
        # FO -> TLI=0 (4.1) -> FO (5.1): the final formula still computes
        # the original query.
        formula, output = self.SHALLOW[1]
        expr = compile_fo(formula, output, SCHEMA)
        query = build_ra_query(expr, ["R1", "R2"], SCHEMA)
        translation = translate_query(
            query, QueryArity((2, 2), len(output))
        )
        db = random_database([2, 2], [4, 3], universe_size=3, seed=4)
        original = evaluate_fo_query(formula, output, db)
        assert translation.evaluate(db).same_set(original)


class TestTheorem42:
    """Every PTIME (fixpoint) query is a TLI=1 (MLI=1) query."""

    def test_tc_term_membership(self):
        signature = QueryArity((2,), 2)
        tli = build_fixpoint_query(
            transitive_closure_query("E"), style="tli"
        )
        mli = build_fixpoint_query(
            transitive_closure_query("E"), style="mli"
        )
        assert is_tli_query_term(tli, signature, 1)
        assert is_mli_query_term(mli, signature, 1)
        # Strictly order 4: not TLI=0/MLI=0.
        assert not is_tli_query_term(tli, signature, 0)
        assert not is_mli_query_term(mli, signature, 0)

    def test_tc_computes_transitive_closure(self):
        graph = random_graph_relation(6, 0.3, seed=5)
        db = Database.of({"E": graph})
        run = run_fixpoint_query(transitive_closure_query("E"), db)
        assert run.relation.as_set() == transitive_closure(graph)


class TestTheorem52:
    """Every TLI=1 (MLI=1) query is a PTIME query: the specialized
    evaluator agrees with the Datalog baseline."""

    def test_agreement_with_datalog_engine(self):
        V = RVar
        program = Program.of(
            [
                Rule(
                    Literal("tc", (V("x"), V("y"))),
                    (Literal("E", (V("x"), V("y"))),),
                ),
                Rule(
                    Literal("tc", (V("x"), V("y"))),
                    (
                        Literal("E", (V("x"), V("z"))),
                        Literal("tc", (V("z"), V("y"))),
                    ),
                ),
            ],
            {"E": 2},
        )
        for seed in (6, 7):
            graph = random_graph_relation(6, 0.3, seed=seed)
            db = Database.of({"E": graph})
            baseline = evaluate_program(program, db)["tc"]
            run = run_fixpoint_query(datalog_to_fixpoint(program), db)
            assert run.relation.same_set(baseline)

    def test_polynomial_stage_count(self):
        # The evaluator runs at most |D|^k stages — the Crank bound.
        graph = random_graph_relation(6, 0.3, seed=8)
        db = Database.of({"E": graph})
        run = run_fixpoint_query(
            transitive_closure_query("E"), db, stop_on_convergence=False
        )
        assert run.stages == len(db.active_domain()) ** 2
