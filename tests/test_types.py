"""Tests for type syntax, functionality order, and unification."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnificationError
from repro.types.order import derivation_order, ground, order
from repro.types.pretty import pretty_type
from repro.types.types import (
    Arrow,
    BaseG,
    BaseO,
    G,
    O,
    TypeVar,
    arrow,
    arrow_parts,
    bool_type,
    characteristic_type,
    eq_type,
    int_type,
    relation_type,
    type_dag_size,
    type_size,
)
from repro.types.unify import Substitution, unifiable, unify


@st.composite
def types(draw, max_depth: int = 4):
    depth = draw(st.integers(min_value=0, max_value=max_depth))

    def build(d):
        if d == 0:
            return draw(
                st.sampled_from(
                    [O, G, TypeVar("a"), TypeVar("b"), TypeVar("c")]
                )
            )
        return Arrow(build(d - 1), build(d - 1))

    return build(depth)


class TestTypeSyntax:
    def test_arrow_sugar(self):
        assert (O >> G) == Arrow(O, G)

    def test_arrow_many_right_nested(self):
        assert arrow(O, O, G) == Arrow(O, Arrow(O, G))

    def test_arrow_requires_argument(self):
        with pytest.raises(ValueError):
            arrow()

    def test_arrow_parts_inverse(self):
        args, base = arrow_parts(arrow(O, G, O, G))
        assert args == [O, G, O]
        assert base == G

    def test_pretty_parenthesization(self):
        assert pretty_type(arrow(O, O, G)) == "o -> o -> g"
        assert pretty_type(Arrow(Arrow(O, O), G)) == "(o -> o) -> g"

    def test_type_size(self):
        assert type_size(O) == 1
        assert type_size(Arrow(O, G)) == 3


class TestPaperTypes:
    def test_bool_type(self):
        assert bool_type() == arrow(G, G, G)

    def test_int_type(self):
        assert int_type() == arrow(Arrow(G, G), G, G)

    def test_eq_type(self):
        assert eq_type() == arrow(O, O, G, G, G)

    def test_relation_type_shape(self):
        # o^2_g = (o -> o -> g -> g) -> g -> g (Section 3.1).
        assert relation_type(2) == arrow(arrow(O, O, G, G), G, G)

    def test_relation_type_order_is_two(self):
        # "The order of this type is 2, independent of the arity of r."
        for arity in range(5):
            assert order(relation_type(arity)) == 2

    def test_relation_type_order_grows_with_accumulator(self):
        phi = characteristic_type(2)
        assert order(phi) == 1
        assert order(relation_type(2, phi)) == 3

    def test_negative_arity_rejected(self):
        with pytest.raises(ValueError):
            relation_type(-1)


class TestOrder:
    @pytest.mark.parametrize(
        "type_, expected",
        [
            (O, 0),
            (TypeVar("t"), 0),
            (Arrow(O, O), 1),
            (arrow(O, O, O), 1),
            (Arrow(Arrow(O, O), O), 2),
            (bool_type(), 1),
            (int_type(), 2),
            (eq_type(), 1),
        ],
    )
    def test_order_cases(self, type_, expected):
        assert order(type_) == expected

    def test_order_definition_recurrence(self):
        # order(a -> b) = max(1 + order(a), order(b)).
        a, b = Arrow(O, O), arrow(Arrow(O, O), O)
        assert order(Arrow(a, b)) == max(1 + order(a), order(b))

    @given(types())
    def test_ground_minimizes_order(self, type_):
        assert order(ground(type_)) <= order(
            ground(type_, Arrow(O, O))
        )

    def test_derivation_order_empty(self):
        assert derivation_order({}) == 0


class TestUnification:
    def test_variable_binds(self):
        subst = unify(TypeVar("a"), O)
        assert subst.apply(TypeVar("a")) == O

    def test_arrow_decomposition(self):
        subst = unify(
            Arrow(TypeVar("a"), G), Arrow(O, TypeVar("b"))
        )
        assert subst.apply(TypeVar("a")) == O
        assert subst.apply(TypeVar("b")) == G

    def test_occurs_check(self):
        with pytest.raises(UnificationError):
            unify(TypeVar("a"), Arrow(TypeVar("a"), O))

    def test_base_clash(self):
        with pytest.raises(UnificationError):
            unify(O, G)

    def test_arrow_base_clash(self):
        with pytest.raises(UnificationError):
            unify(Arrow(O, O), O)

    def test_unifiable_predicate(self):
        assert unifiable(TypeVar("a"), relation_type(2))
        assert not unifiable(O, Arrow(O, O))

    @given(types())
    def test_unify_with_self(self, type_):
        assert unifiable(type_, type_)

    @given(types())
    def test_unify_with_fresh_var(self, type_):
        subst = unify(TypeVar("?fresh"), type_)
        assert subst.apply(TypeVar("?fresh")) == type_

    def test_triangular_walk(self):
        subst = Substitution()
        subst.unify(TypeVar("a"), TypeVar("b"))
        subst.unify(TypeVar("b"), O)
        assert subst.walk(TypeVar("a")) == O

    def test_copy_is_independent(self):
        subst = Substitution()
        subst.unify(TypeVar("a"), O)
        clone = subst.copy()
        clone.unify(TypeVar("b"), G)
        assert "b" not in subst


class TestDagSize:
    def test_shared_structure_counted_once(self):
        shared = Arrow(O, O)
        wide = Arrow(shared, shared)
        assert type_size(wide) == 7
        assert type_dag_size(wide) == 3  # o, o->o, (o->o)->(o->o)


class TestDeepTypes:
    """order()/ground() must survive argument nesting far beyond the
    recursion limit (Section 6 types are deeply left-nested)."""

    @staticmethod
    def _left_nested(depth):
        # ((((o -> o) -> o) -> o) ... -> o): order = depth.
        node = O
        for _ in range(depth):
            node = Arrow(node, O)
        return node

    def test_order_beyond_recursion_limit(self):
        import sys

        depth = sys.getrecursionlimit() + 10_000
        deep = self._left_nested(depth)
        assert order(deep) == depth

    def test_ground_beyond_recursion_limit(self):
        import sys

        depth = sys.getrecursionlimit() + 10_000
        node = TypeVar("a")
        for _ in range(depth):
            node = Arrow(node, O)
        grounded = ground(node)
        assert order(grounded) == depth
        # The variable at the bottom was replaced by o.
        probe = grounded
        while isinstance(probe, Arrow):
            probe = probe.left
        assert probe == O

    def test_derivation_order_beyond_recursion_limit(self):
        import sys

        depth = sys.getrecursionlimit() + 10_000
        deep = self._left_nested(depth)
        assert derivation_order({(): deep, (0,): O}) == depth

    def test_ground_preserves_sharing(self):
        shared = Arrow(TypeVar("a"), O)
        wide = Arrow(shared, shared)
        grounded = ground(wide)
        assert grounded.left is grounded.right

    def test_ground_exponential_tree_polynomial_dag(self):
        # Doubling-sharing DAG: tree size 2^200, DAG size ~200.
        node = Arrow(TypeVar("a"), TypeVar("b"))
        for _ in range(200):
            node = Arrow(node, node)
        grounded = ground(node)
        assert order(grounded) == 201
