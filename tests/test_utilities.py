"""Tests for the small supporting utilities (naming, errors, misc APIs)."""

import pytest

from repro.db.domain import active_domain_term, domain_product_size
from repro.db.relations import Database, Relation
from repro.errors import FuelExhausted, ParseError, ReproError
from repro.naming import (
    NameSupply,
    constant_index,
    constant_name,
    numbered,
)


class TestNaming:
    def test_constant_name_roundtrip(self):
        for index in (1, 7, 120):
            assert constant_index(constant_name(index)) == index

    def test_constant_name_bounds(self):
        with pytest.raises(ValueError):
            constant_name(0)

    def test_constant_index_variants(self):
        assert constant_index("o_3") == 3
        assert constant_index("alice") is None
        assert constant_index("o") is None

    def test_fresh_returns_base_when_unused(self):
        supply = NameSupply()
        assert supply.fresh("x") == "x"

    def test_fresh_never_repeats(self):
        supply = NameSupply(["x"])
        names = {supply.fresh("x") for _ in range(10)}
        assert len(names) == 10
        assert "x" not in names

    def test_fresh_many(self):
        supply = NameSupply()
        names = supply.fresh_many(4, "y")
        assert len(set(names)) == 4

    def test_contains(self):
        supply = NameSupply(["used"])
        assert "used" in supply
        assert "fresh" not in supply

    def test_numbered_stream(self):
        stream = numbered("t", start=2)
        assert [next(stream) for _ in range(3)] == ["t2", "t3", "t4"]


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ParseError, ReproError)
        assert issubclass(FuelExhausted, ReproError)

    def test_fuel_exhausted_carries_budget(self):
        exc = FuelExhausted(100)
        assert exc.steps == 100
        assert "100" in str(exc)

    def test_parse_error_context(self):
        exc = ParseError("boom", position=3, source="abcdef")
        assert "position 3" in str(exc)


class TestRelationExtras:
    def test_from_any_order_sorts(self):
        rel = Relation.from_any_order(1, [("o3",), ("o1",), ("o3",)])
        assert rel.tuples == (("o1",), ("o3",))

    def test_sorted(self):
        rel = Relation.from_tuples(1, [("o2",), ("o1",)])
        assert rel.sorted().tuples == (("o1",), ("o2",))

    def test_str_rendering(self):
        rel = Relation.from_tuples(2, [("a", "b")])
        assert "Relation[2]" in str(rel)
        db = Database.of({"R": rel})
        assert "R=" in str(db)

    def test_domain_product_size(self):
        db = Database.of(
            {"R": Relation.from_tuples(2, [("a", "b"), ("b", "c")])}
        )
        assert domain_product_size(db, 2) == 9

    def test_active_domain_term_is_encoding(self):
        from repro.db.decode import decode_relation

        db = Database.of({"R": Relation.from_tuples(1, [("a",), ("b",)])})
        decoded = decode_relation(active_domain_term(db), 1)
        assert decoded.relation.as_set() == {("a",), ("b",)}
